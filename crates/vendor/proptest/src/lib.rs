//! A minimal, dependency-free, deterministic stand-in for `proptest`.
//!
//! The workspace builds in an offline container without a crates.io mirror,
//! so the subset of the proptest API used by the test suites is vendored
//! here: the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map` /
//! `prop_recursive`, [`prop_oneof!`], ranges and [`prelude::any`] as
//! strategies, [`collection::vec`], and the `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs via
//!   the normal assertion message; reproduce it from the fixed seed.
//! * **Deterministic.** Every test function derives its RNG seed from the
//!   test's case count, so runs are identical across machines.

#![warn(missing_docs)]

use std::rc::Rc;

/// RNG + configuration for a test run.
pub mod test_runner {
    /// SplitMix64, the deterministic RNG behind every strategy.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator seeded with `seed`.
        pub fn new(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw below `bound` (`bound > 0`).
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }

    /// Per-test configuration (`cases` = number of generated inputs).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::rc::Rc;

    /// Generates values of an associated type from an RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (needed for `prop_oneof!` arms and
        /// recursive strategies).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
        }

        /// Builds a recursive strategy: `self` generates leaves, and `f`
        /// turns a strategy for subtrees into a strategy for branches.
        /// `depth` bounds the recursion; the size/branch hints of the real
        /// proptest API are accepted and ignored.
        fn prop_recursive<F, S>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
            S: Strategy<Value = Self::Value> + 'static,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                let branch = f(current).boxed();
                let leaf = leaf.clone();
                // Mix leaves back in so shallow values stay reachable.
                current = BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                    if rng.below(4) == 0 {
                        leaf.generate(rng)
                    } else {
                        branch.generate(rng)
                    }
                }));
            }
            current
        }
    }

    /// A cloneable, type-erased strategy.
    pub struct BoxedStrategy<T>(pub(crate) Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range");
                    let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    start + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy returned by [`crate::prelude::any`].
    pub struct Any<T>(pub(crate) core::marker::PhantomData<T>);

    macro_rules! impl_any {
        ($($t:ty => $gen:expr),* $(,)?) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let f: fn(&mut TestRng) -> $t = $gen;
                    f(rng)
                }
            }
        )*};
    }

    impl_any! {
        bool => |r| r.next_u64() & 1 == 1,
        u8 => |r| r.next_u64() as u8,
        u16 => |r| r.next_u64() as u16,
        u32 => |r| r.next_u64() as u32,
        u64 => |r| r.next_u64(),
        usize => |r| r.next_u64() as usize,
        i32 => |r| r.next_u64() as i32,
        i64 => |r| r.next_u64() as i64,
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Lengths accepted by [`vec()`]: a fixed `usize` or a `Range<usize>`.
    pub trait IntoLen {
        /// Draws a concrete length.
        fn draw(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoLen for usize {
        fn draw(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoLen for core::ops::Range<usize> {
        fn draw(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// Strategy for `Vec<T>` with element strategy `element` and length `len`.
    pub fn vec<S: Strategy, L: IntoLen>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoLen> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.draw(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a test usually imports.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Strategy generating arbitrary values of `T`.
    pub fn any<T>() -> crate::strategy::Any<T> {
        crate::strategy::Any(core::marker::PhantomData)
    }
}

/// Re-export so `$crate` paths in macros resolve.
#[doc(hidden)]
pub use test_runner::TestRng as __TestRng;

#[doc(hidden)]
pub fn __one_of<T: 'static>(arms: Vec<strategy::BoxedStrategy<T>>) -> strategy::BoxedStrategy<T> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    strategy::BoxedStrategy(Rc::new(move |rng: &mut test_runner::TestRng| {
        let i = rng.below(arms.len() as u64) as usize;
        use strategy::Strategy;
        arms[i].generate(rng)
    }))
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` for every generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::strategy::Strategy as _;
                let config: $crate::test_runner::Config = $config;
                let mut __rng = $crate::__TestRng::new(
                    0xD47E_2005_u64 ^ ((config.cases as u64) << 32) ^ (stringify!($name).len() as u64),
                );
                for __case in 0..config.cases {
                    $(let $pat = ($strat).generate(&mut __rng);)+
                    $body
                }
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $($(#[$meta])* fn $name($($pat in $strat),+) $body)*
        }
    };
}

/// Uniform choice between strategy arms (all arms must yield one type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        use $crate::strategy::Strategy as _;
        $crate::__one_of(vec![$(($strat).boxed()),+])
    }};
}

/// `assert!` under a property (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a property (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a property (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in 0u8..4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(any::<bool>(), 4)) {
            prop_assert_eq!(v.len(), 4);
        }

        #[test]
        fn tuples_and_map(pair in (0u32..5, 0u32..5).prop_map(|(a, b)| a + b)) {
            prop_assert!(pair <= 8);
        }
    }

    #[derive(Clone, Debug)]
    enum Tree {
        #[allow(dead_code)]
        Leaf(u32),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn recursive_strategies_bound_depth(t in (0u32..8).prop_map(Tree::Leaf)
            .prop_recursive(5, 32, 2, |inner| prop_oneof![
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b))),
            ])) {
            prop_assert!(depth(&t) <= 5);
        }
    }
}
