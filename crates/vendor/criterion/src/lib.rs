//! A minimal, dependency-free stand-in for the `criterion` benchmark crate.
//!
//! The workspace builds in an offline container without a crates.io mirror,
//! so the API subset the `emm-bench` benchmarks use is vendored here. Each
//! benchmark runs `sample_size` iterations after one warm-up and prints the
//! mean wall-clock time — no statistics, outlier analysis, or HTML reports.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver (a much simplified `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, 10, f);
        self
    }
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.sample_size, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_bench(&id.0, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (required by the real API; a no-op here).
    pub fn finish(self) {}
}

/// Identifies a parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id `"{name}/{parameter}"`.
    pub fn new<P: Display>(name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// An id from the parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    elapsed: Option<Duration>,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine()); // warm-up
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(routine());
        }
        self.elapsed = Some(start.elapsed() / self.samples as u32);
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        samples,
        elapsed: None,
    };
    f(&mut b);
    match b.elapsed {
        Some(d) => println!(
            "  {name}: {:.3} ms/iter ({samples} iters)",
            d.as_secs_f64() * 1e3
        ),
        None => println!("  {name}: no measurement (Bencher::iter never called)"),
    }
}

/// Collects benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| runs += 1);
        });
        group.finish();
        assert_eq!(runs, 4, "one warm-up + three samples");
        c.bench_function("standalone", |b| b.iter(|| ()));
    }
}
