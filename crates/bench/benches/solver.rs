//! Criterion benchmark: raw CDCL solver performance on standard hard
//! instances, tracking the backend the whole stack stands on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use emm_sat::{Lit, SolveResult, Solver};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

#[allow(clippy::needless_range_loop)]
fn pigeonhole(pigeons: usize, holes: usize) -> Solver {
    let mut s = Solver::new();
    let p: Vec<Vec<Lit>> = (0..pigeons)
        .map(|_| (0..holes).map(|_| s.new_var().positive()).collect())
        .collect();
    for row in &p {
        s.add_clause(row);
    }
    for h in 0..holes {
        for i in 0..pigeons {
            for j in i + 1..pigeons {
                s.add_clause(&[!p[i][h], !p[j][h]]);
            }
        }
    }
    s
}

fn random_3sat(n_vars: usize, ratio: f64, seed: u64) -> Solver {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = Solver::new();
    let vars: Vec<Lit> = (0..n_vars).map(|_| s.new_var().positive()).collect();
    let n_clauses = (n_vars as f64 * ratio) as usize;
    for _ in 0..n_clauses {
        let clause: Vec<Lit> = (0..3)
            .map(|_| {
                let v = vars[rng.random_range(0..n_vars)];
                if rng.random_bool(0.5) {
                    v
                } else {
                    !v
                }
            })
            .collect();
        s.add_clause(&clause);
    }
    s
}

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("cdcl");
    group.sample_size(10);
    for n in [7usize, 8] {
        group.bench_with_input(BenchmarkId::new("pigeonhole", n), &n, |b, &n| {
            b.iter(|| {
                let mut s = pigeonhole(n + 1, n);
                assert_eq!(s.solve(), SolveResult::Unsat);
            });
        });
    }
    for n in [120usize, 160] {
        group.bench_with_input(BenchmarkId::new("random3sat_at_4.2", n), &n, |b, &n| {
            b.iter(|| {
                let mut s = random_3sat(n, 4.2, 0x5EED + n as u64);
                std::hint::black_box(s.solve());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
