//! Criterion micro-benchmark: EMM constraint generation throughput
//! (the `EMM_Constraints` procedure invoked after every unrolling).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use emm_core::{EmmEncoder, EmmOptions, MemoryFrameLits, MemoryShape, PortLits};
use emm_sat::{CnfSink, CountingSink};

fn fresh_frame(sink: &mut dyn CnfSink, shape: &MemoryShape) -> MemoryFrameLits {
    let port = |sink: &mut dyn CnfSink| PortLits {
        addr: (0..shape.addr_width)
            .map(|_| sink.new_var().positive())
            .collect(),
        en: sink.new_var().positive(),
        data: (0..shape.data_width)
            .map(|_| sink.new_var().positive())
            .collect(),
    };
    MemoryFrameLits {
        reads: (0..shape.read_ports).map(|_| port(sink)).collect(),
        writes: (0..shape.write_ports).map(|_| port(sink)).collect(),
    }
}

fn bench_encoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("emm_encoding");
    for (label, m, n, r, w) in [
        ("array_10x32_1r1w", 10usize, 32usize, 1usize, 1usize),
        ("table_12x32_3r1w", 12, 32, 3, 1),
        ("wide_8x64_2r2w", 8, 64, 2, 2),
    ] {
        let shape = MemoryShape {
            addr_width: m,
            data_width: n,
            read_ports: r,
            write_ports: w,
            arbitrary_init: true,
        };
        group.bench_with_input(
            BenchmarkId::new("unroll_32_frames", label),
            &shape,
            |b, s| {
                b.iter(|| {
                    let mut enc = EmmEncoder::new(std::slice::from_ref(s), EmmOptions::default());
                    let mut sink = CountingSink::new();
                    for _ in 0..32 {
                        let frame = fresh_frame(&mut sink, s);
                        enc.add_frame(&mut sink, &[frame]);
                    }
                    std::hint::black_box(enc.stats())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_encoding);
criterion_main!(benches);
