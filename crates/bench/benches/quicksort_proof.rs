//! Criterion benchmark: the Table 1 headline at micro scale — the
//! quicksort P1 forward-induction proof under EMM versus the explicit
//! memory expansion.

use criterion::{criterion_group, criterion_main, Criterion};
use emm_bmc::{BmcEngine, BmcOptions, BmcVerdict};
use emm_core::explicit_model;
use emm_designs::quicksort::{QuickSort, QuickSortConfig};

fn prove_p1(design: &emm_aig::Design, bound: usize) {
    let mut engine = BmcEngine::new(
        design,
        BmcOptions {
            proofs: true,
            ..BmcOptions::default()
        },
    );
    let run = engine.check(0, bound).expect("run");
    assert!(
        matches!(run.verdict, BmcVerdict::Proof { .. }),
        "{:?}",
        run.verdict
    );
}

fn bench_quicksort(c: &mut Criterion) {
    let mut group = c.benchmark_group("quicksort_p1_proof");
    group.sample_size(10);

    let qs = QuickSort::new(QuickSortConfig {
        n: 3,
        addr_width: 3,
        data_width: 3,
        bug: Default::default(),
    });
    let bound = qs.cycle_bound();
    group.bench_function("emm_n3", |b| b.iter(|| prove_p1(&qs.design, bound)));

    let (expl, _) = explicit_model(&qs.design);
    group.bench_function("explicit_n3", |b| b.iter(|| prove_p1(&expl, bound)));

    group.finish();
}

criterion_group!(benches, bench_quicksort);
criterion_main!(benches);
