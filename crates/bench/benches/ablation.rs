//! Criterion benchmark: the exclusivity-constraint ablation.
//!
//! Section 3 item 3 of the paper: the explicit exclusivity constraints
//! (eq. (4)) are not needed for correctness but make the SAT solver faster
//! because deciding one matching read–write pair immediately implies all
//! others invalid. `ForwardingEncoding::Direct` drops them; this benchmark
//! measures what they buy on a read-heavy workload (the comparison
//! reported in the paper's ref. [18]).

use criterion::{criterion_group, criterion_main, Criterion};
use emm_bmc::{BmcEngine, BmcOptions, BmcVerdict};
use emm_core::{EmmOptions, ForwardingEncoding};
use emm_designs::memcpy::{Memcpy, MemcpyConfig};
use emm_designs::quicksort::{QuickSort, QuickSortConfig};

fn check(design: &emm_aig::Design, prop: usize, depth: usize, encoding: ForwardingEncoding) {
    let mut engine = BmcEngine::new(
        design,
        BmcOptions {
            proofs: true,
            emm: EmmOptions {
                encoding,
                ..EmmOptions::default()
            },
            ..BmcOptions::default()
        },
    );
    let run = engine.check(prop, depth).expect("run");
    assert!(
        matches!(run.verdict, BmcVerdict::Proof { .. }),
        "{:?}",
        run.verdict
    );
}

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("exclusivity_ablation");
    group.sample_size(10);

    let qs = QuickSort::new(QuickSortConfig {
        n: 3,
        addr_width: 3,
        data_width: 3,
        bug: Default::default(),
    });
    let bound = qs.cycle_bound();
    group.bench_function("quicksort_p1_exclusive", |b| {
        b.iter(|| check(&qs.design, 0, bound, ForwardingEncoding::Exclusive));
    });
    group.bench_function("quicksort_p1_direct", |b| {
        b.iter(|| check(&qs.design, 0, bound, ForwardingEncoding::Direct));
    });

    let engine = Memcpy::new(MemcpyConfig {
        len: 3,
        addr_width: 3,
        data_width: 4,
    });
    let bound = engine.cycle_bound();
    group.bench_function("memcpy_exclusive", |b| {
        b.iter(|| check(&engine.design, 0, bound, ForwardingEncoding::Exclusive));
    });
    group.bench_function("memcpy_direct", |b| {
        b.iter(|| check(&engine.design, 0, bound, ForwardingEncoding::Direct));
    });

    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
