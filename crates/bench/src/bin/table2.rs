//! Regenerates **Table 2** — "Performance summary on Quick Sort on P2":
//! proof-based abstraction on the stack-discipline property, EMM+PBA
//! versus Explicit+PBA.
//!
//! The paper's key observation: the reduced model for P2 contains no latch
//! from the array memory's control logic, so the array module is abstracted
//! away entirely; the EMM reduced model has ~91 of 167 latches, while the
//! explicit reduced model still carries thousands of memory latches.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p emm-bench --bin table2 -- [--aw A] [--dw D] [--timeout SECS] [--max-n N]
//! ```

use std::time::Duration;

use emm_bench::{secs, Table};
use emm_bmc::{pba, BmcEngine, BmcOptions, BmcVerdict};
use emm_core::explicit_model;
use emm_designs::quicksort::{QuickSort, QuickSortConfig};

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let aw: usize = arg_value("--aw").and_then(|v| v.parse().ok()).unwrap_or(6);
    let dw: usize = arg_value("--dw").and_then(|v| v.parse().ok()).unwrap_or(4);
    let timeout = Duration::from_secs(
        arg_value("--timeout")
            .and_then(|v| v.parse().ok())
            .unwrap_or(60),
    );
    let max_n: usize = arg_value("--max-n")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);

    println!("Table 2 — Quick Sort on P2: EMM+PBA vs Explicit+PBA");
    println!(
        "array AW={aw} DW={dw}; stability depth 10; timeout {}s",
        timeout.as_secs()
    );
    println!("paper reference (AW=10, DW=32):");
    println!("  N=3: EMM 91(167) FF, PBA 10 s, proof 5 s / Explicit 293(37K) FF, proof 2K s");
    println!("  N=4: EMM 93(167) FF, PBA 38 s, proof 145 s / Explicit 2858(37K) FF, 10K s");
    println!("  N=5: EMM 91(167) FF, PBA 351 s, proof 2316 s / Explicit: no stable set in 3h");
    println!();

    let mut table = Table::new(&[
        "N",
        "EMM FF(orig)",
        "PBA sec",
        "proof sec",
        "array dropped",
        "Expl FF(orig)",
        "Expl PBA sec",
        "Expl proof sec",
    ]);
    for n in 3..=max_n {
        let qs = QuickSort::new(QuickSortConfig {
            n,
            addr_width: aw,
            data_width: dw,
            bug: Default::default(),
        });
        let prop = qs.p2.0 as usize;
        let config = pba::PbaConfig::default()
            .stability_depth(10)
            .max_depth(qs.cycle_bound())
            .wall_limit(Some(timeout));

        // --- EMM + PBA (with the refinement loop: PBA only preserves
        // correctness up to the discovery depth, so proofs beyond it may
        // need another round) --------------------------------------------
        let started = std::time::Instant::now();
        let result = pba::discover_and_prove(&qs.design, prop, &config, qs.cycle_bound(), 4)
            .expect("discover and prove");
        let total = started.elapsed();
        let emm_ff = format!(
            "{}({})",
            result.abstraction.num_kept_latches(),
            qs.design.num_latches()
        );
        let pba_time = format!("{} ({}r)", secs(total), result.rounds);
        let array_dropped = !result.abstraction.kept_memories[qs.array.0 as usize];
        let proof_time = match result.verdict {
            BmcVerdict::Proof { .. } => {
                // Re-run just the proof on the final abstraction for a
                // clean proof-only time.
                let mut engine = BmcEngine::new(
                    &qs.design,
                    BmcOptions {
                        proofs: true,
                        abstraction: Some(result.abstraction.clone()),
                        validate_traces: false,
                        wall_limit: Some(timeout),
                        ..BmcOptions::default()
                    },
                );
                let run = engine.check(prop, qs.cycle_bound()).expect("proof rerun");
                match run.verdict {
                    BmcVerdict::Proof { .. } => secs(run.elapsed),
                    _ => format!("{:?}", run.verdict),
                }
            }
            BmcVerdict::Unknown { .. } => format!(">{}", timeout.as_secs()),
            ref other => format!("{other:?}"),
        };

        // --- Explicit + PBA ---------------------------------------------
        let (expl, _) = explicit_model(&qs.design);
        let expl_config = pba::PbaConfig::default()
            .stability_depth(10)
            .max_depth(qs.cycle_bound())
            .wall_limit(Some(timeout));
        let expl_disc = pba::discover(&expl, prop, &expl_config).expect("explicit discovery");
        let stable = expl_disc.stable_at.is_some();
        let expl_ff = if stable {
            format!(
                "{}({})",
                expl_disc.abstraction.num_kept_latches(),
                expl.num_latches()
            )
        } else {
            format!("-({})", expl.num_latches())
        };
        let expl_pba_time = if stable {
            secs(expl_disc.elapsed)
        } else {
            format!(">{}", timeout.as_secs())
        };
        let expl_proof_time = if stable {
            let mut engine = BmcEngine::new(
                &expl,
                BmcOptions {
                    proofs: true,
                    abstraction: Some(expl_disc.abstraction.clone()),
                    validate_traces: false,
                    wall_limit: Some(timeout),
                    ..BmcOptions::default()
                },
            );
            let run = engine
                .check(prop, qs.cycle_bound())
                .expect("explicit proof");
            match run.verdict {
                BmcVerdict::Proof { .. } => secs(run.elapsed),
                BmcVerdict::Unknown { .. } => format!(">{}", timeout.as_secs()),
                _ => "refine".to_string(),
            }
        } else {
            "NA".to_string()
        };

        table.row(&[
            n.to_string(),
            emm_ff,
            pba_time,
            proof_time,
            array_dropped.to_string(),
            expl_ff,
            expl_pba_time,
            expl_proof_time,
        ]);
        println!("{}", table.render());
    }
    println!("final:\n{}", table.render());
}
