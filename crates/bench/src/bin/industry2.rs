//! Regenerates the **Industry Design II** case study: the abstraction /
//! invariant-discovery workflow on the 1W/3R lookup engine.
//!
//! Paper reference: spurious witnesses at depth 7 with the memory fully
//! abstracted; no witnesses to depth 200 with EMM (10 s); the invariant
//! `G(WE=0 ∨ WD=0)` proved by backward induction at depth 2 in <1 s with
//! EMM versus 78 s with Explicit Modeling; the 8 properties then proved on
//! a 20–30-latch reduced model with the invariant as a read-data
//! constraint.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p emm-bench --bin industry2 -- [--paper] [--depth D]
//! ```

use std::time::Duration;

use emm_bench::{secs, Table};
use emm_bmc::{pba, AbstractionSpec, BmcEngine, BmcOptions, BmcVerdict, ProofKind};
use emm_core::explicit_model;
use emm_designs::industry2::{Industry2, Industry2Config};

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let paper = std::env::args().any(|a| a == "--paper");
    let depth: usize = arg_value("--depth")
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);
    let config = if paper {
        Industry2Config::paper()
    } else {
        Industry2Config {
            addr_width: 6,
            data_width: 8,
            properties: 8,
            pipeline_depth: 7,
            bulk_stages: 8,
            assume_rd_zero: false,
        }
    };
    let lookup = Industry2::new(config);
    let d = &lookup.design;
    println!("Industry Design II — lookup engine: {}", d.stats());
    println!();

    let mut table = Table::new(&["step", "result", "sec", "paper"]);

    // Step 1: memory fully abstracted — spurious witnesses.
    let no_memory = AbstractionSpec {
        kept_latches: vec![true; d.num_latches()],
        kept_memories: vec![false; d.memories().len()],
    };
    let mut engine = BmcEngine::new(
        d,
        BmcOptions {
            abstraction: Some(no_memory),
            validate_traces: false,
            ..BmcOptions::default()
        },
    );
    let run = engine.check(lookup.lookups[0], 20).expect("run");
    let cell = match run.verdict {
        BmcVerdict::Counterexample(t) => format!("spurious CE at depth {}", t.depth() - 1),
        ref other => format!("{other:?}"),
    };
    table.row(&[
        "memory abstracted".into(),
        cell,
        secs(run.elapsed),
        "spurious CE at depth 7".into(),
    ]);

    // Step 2: EMM — no witnesses for any property.
    let started = std::time::Instant::now();
    let mut engine = BmcEngine::new(d, BmcOptions::default());
    let mut clean = 0;
    for &p in &lookup.lookups {
        let run = engine.check(p, depth).expect("run");
        if matches!(run.verdict, BmcVerdict::BoundReached) {
            clean += 1;
        }
    }
    table.row(&[
        format!("EMM to depth {depth}"),
        format!("{clean}/{} no witness", lookup.lookups.len()),
        secs(started.elapsed()),
        "none up to 200 in 10 s".into(),
    ]);

    // Step 3: the invariant by backward induction — EMM vs Explicit.
    let mut engine = BmcEngine::new(
        d,
        BmcOptions {
            proofs: true,
            ..BmcOptions::default()
        },
    );
    let run = engine.check(lookup.invariant, 10).expect("run");
    let cell = match run.verdict {
        BmcVerdict::Proof {
            kind: ProofKind::BackwardInduction,
            depth,
        } => {
            format!("backward induction, depth {depth}")
        }
        ref other => format!("{other:?}"),
    };
    table.row(&[
        "G(WE=0 or WD=0), EMM".into(),
        cell,
        secs(run.elapsed),
        "depth 2, <1 s".into(),
    ]);

    let (expl, _) = explicit_model(d);
    let mut engine = BmcEngine::new(
        &expl,
        BmcOptions {
            proofs: true,
            wall_limit: Some(Duration::from_secs(120)),
            ..BmcOptions::default()
        },
    );
    let run = engine.check(lookup.invariant, 10).expect("run");
    let cell = match run.verdict {
        BmcVerdict::Proof { kind, depth } => format!("{kind:?}, depth {depth}"),
        ref other => format!("{other:?}"),
    };
    table.row(&[
        "G(WE=0 or WD=0), Explicit".into(),
        cell,
        secs(run.elapsed),
        "78 s".into(),
    ]);

    // Step 4: invariant as RD constraint + abstracted memory + PBA.
    let constrained = Industry2::new(Industry2Config {
        assume_rd_zero: true,
        ..config
    });
    let cd = &constrained.design;
    let started = std::time::Instant::now();
    let pba_config = pba::PbaConfig {
        stability_depth: 6,
        max_depth: 30,
        ..pba::PbaConfig::default()
    };
    let mut proved = 0;
    let mut reduced_sizes = Vec::new();
    for &p in &constrained.lookups {
        let result = pba::discover_and_prove(cd, p, &pba_config, 30, 3).expect("dap");
        if matches!(result.verdict, BmcVerdict::Proof { .. }) {
            proved += 1;
        }
        reduced_sizes.push(result.abstraction.num_kept_latches());
    }
    let min_max = format!(
        "{proved}/{} proved, reduced to {}-{} FF (of {})",
        constrained.lookups.len(),
        reduced_sizes.iter().min().unwrap_or(&0),
        reduced_sizes.iter().max().unwrap_or(&0),
        cd.num_latches(),
    );
    table.row(&[
        "invariant applied + PBA".into(),
        min_max,
        secs(started.elapsed()),
        "8/8 on 20-30 FF models, <1 s each".into(),
    ]);

    println!("{}", table.render());
}
