//! Regenerates **Table 1** — "Performance summary on Quick Sort":
//! forward induction proofs of P1/P2 for array sizes N, EMM (BMC-3) versus
//! Explicit Modeling (BMC-1).
//!
//! The paper ran `AW=10, DW=32` on a 2.8 GHz Xeon with a 3-hour timeout and
//! saw EMM complete in 30–6376 s while Explicit always timed out. This
//! harness defaults to `AW=6, DW=4` and a 60-second timeout, which
//! reproduces the same *shape* (EMM seconds, Explicit timeout) in minutes.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p emm-bench --bin table1 -- [--full] [--aw A] [--dw D] [--timeout SECS] [--max-n N]
//!     --full      paper widths (AW=10, DW=32) — slow
//! ```

use std::time::Duration;

use emm_bench::{resident_mib, secs, Table};
use emm_bmc::{BmcEngine, BmcOptions, BmcVerdict};
use emm_core::explicit_model;
use emm_designs::quicksort::{QuickSort, QuickSortConfig};

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let aw: usize = arg_value("--aw")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if full { 10 } else { 6 });
    let dw: usize = arg_value("--dw")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if full { 32 } else { 4 });
    let timeout = Duration::from_secs(
        arg_value("--timeout")
            .and_then(|v| v.parse().ok())
            .unwrap_or(60),
    );
    let max_n: usize = arg_value("--max-n")
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);

    println!("Table 1 — Quick Sort: EMM (BMC-3) vs Explicit Modeling (BMC-1)");
    println!(
        "array AW={aw} DW={dw}; per-run timeout {}s",
        timeout.as_secs()
    );
    println!("paper reference (AW=10, DW=32, 3h timeout):");
    println!("  N=3: D=27, EMM 64/30 s, Explicit >3h");
    println!("  N=4: D=42, EMM 601/453 s, Explicit >3h");
    println!("  N=5: D=59, EMM 6376/4916 s, Explicit >3h");
    println!();

    let mut table = Table::new(&[
        "N",
        "Prop",
        "D",
        "EMM sec",
        "EMM MB",
        "Explicit sec",
        "Expl MB",
    ]);
    for n in 3..=max_n {
        let qs = QuickSort::new(QuickSortConfig {
            n,
            addr_width: aw,
            data_width: dw,
            bug: Default::default(),
        });
        let (expl, _) = explicit_model(&qs.design);
        for (label, prop) in [("P1", qs.p1.0 as usize), ("P2", qs.p2.0 as usize)] {
            // EMM: BMC-3 forward induction proof.
            let mut engine = BmcEngine::new(
                &qs.design,
                BmcOptions {
                    proofs: true,
                    wall_limit: Some(timeout),
                    ..BmcOptions::default()
                },
            );
            let run = engine.check(prop, qs.cycle_bound()).expect("emm run");
            let (diameter, emm_time) = match run.verdict {
                BmcVerdict::Proof { depth, .. } => (depth.to_string(), secs(run.elapsed)),
                BmcVerdict::Unknown { .. } => ("-".to_string(), format!(">{}", timeout.as_secs())),
                other => (format!("{other:?}"), secs(run.elapsed)),
            };
            let emm_mb = resident_mib()
                .map(|m| format!("{m:.0}"))
                .unwrap_or_default();

            // Explicit: BMC-1 on the expanded model.
            let mut engine = BmcEngine::new(
                &expl,
                BmcOptions {
                    proofs: true,
                    wall_limit: Some(timeout),
                    ..BmcOptions::default()
                },
            );
            let run = engine.check(prop, qs.cycle_bound()).expect("explicit run");
            let expl_time = match run.verdict {
                BmcVerdict::Proof { .. } => secs(run.elapsed),
                BmcVerdict::Unknown { .. } => format!(">{}", timeout.as_secs()),
                other => format!("{other:?}"),
            };
            let expl_mb = resident_mib()
                .map(|m| format!("{m:.0}"))
                .unwrap_or_default();
            table.row(&[
                n.to_string(),
                label.to_string(),
                diameter,
                emm_time,
                emm_mb,
                expl_time,
                expl_mb,
            ]);
            println!("{}", table.render());
        }
    }
    println!("final:\n{}", table.render());
}
