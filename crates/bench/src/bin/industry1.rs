//! Regenerates the **Industry Design I** case study: a memory-backed image
//! filter with a bank of reachability properties.
//!
//! Paper reference: 216 properties; EMM finds 206 witnesses (max depth 51)
//! in ~400 s / 50 MB and proves the remaining 10 by induction in <1 s;
//! Explicit Modeling needs 20540 s / 912 MB for the witnesses and 25 s for
//! the proofs.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p emm-bench --bin industry1 -- [--paper] [--timeout SECS]
//!     --paper   full 216-property configuration (slow under Explicit)
//! ```

use std::time::{Duration, Instant};

use emm_bench::{secs, time_or_timeout, Table};
use emm_bmc::{BmcEngine, BmcOptions, BmcVerdict};
use emm_core::explicit_model;
use emm_designs::image_filter::{ImageFilter, ImageFilterConfig};

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

struct Outcome {
    witnesses: usize,
    max_depth: usize,
    witness_time: Duration,
    witness_timed_out: bool,
    proofs: usize,
    proof_time: Duration,
}

fn run_bank(design: &emm_aig::Design, filter: &ImageFilter, budget: Duration) -> Outcome {
    let deadline = Instant::now() + budget;
    let started = Instant::now();
    let mut witnesses = 0;
    let mut max_depth = 0;
    let mut timed_out = false;
    let mut engine = BmcEngine::new(design, BmcOptions::default());
    for &p in &filter.reachable {
        if Instant::now() >= deadline {
            timed_out = true;
            break;
        }
        let run = engine
            .check(p, filter.config.max_witness_depth + 4)
            .expect("run");
        if let BmcVerdict::Counterexample(t) = run.verdict {
            witnesses += 1;
            max_depth = max_depth.max(t.depth() - 1);
        }
    }
    let witness_time = started.elapsed();

    let started = Instant::now();
    let mut proofs = 0;
    let mut engine = BmcEngine::new(
        design,
        BmcOptions {
            proofs: true,
            ..BmcOptions::default()
        },
    );
    for &p in &filter.unreachable {
        let run = engine.check(p, 24).expect("run");
        if run.verdict.is_proof() {
            proofs += 1;
        }
    }
    Outcome {
        witnesses,
        max_depth,
        witness_time,
        witness_timed_out: timed_out,
        proofs,
        proof_time: started.elapsed(),
    }
}

fn main() {
    let paper = std::env::args().any(|a| a == "--paper");
    let timeout = Duration::from_secs(
        arg_value("--timeout")
            .and_then(|v| v.parse().ok())
            .unwrap_or(120),
    );
    let config = if paper {
        ImageFilterConfig::paper()
    } else {
        ImageFilterConfig {
            line_length: 16,
            addr_width: 4,
            data_width: 8,
            reachable_properties: 40,
            unreachable_properties: 10,
            max_witness_depth: 51,
        }
    };
    let filter = ImageFilter::new(config);
    println!(
        "Industry Design I — image filter: {}",
        filter.design.stats()
    );
    println!("paper reference: EMM 206/216 witnesses (max depth 51) in 400 s + 10 proofs <1 s;");
    println!("                 Explicit 20540 s for witnesses, 25 s for proofs");
    println!();

    let mut table = Table::new(&[
        "model",
        "witnesses",
        "max depth",
        "witness sec",
        "proofs",
        "proof sec",
    ]);

    let emm = run_bank(&filter.design, &filter, timeout);
    table.row(&[
        "EMM".into(),
        format!("{}/{}", emm.witnesses, filter.reachable.len()),
        emm.max_depth.to_string(),
        time_or_timeout(emm.witness_time, !emm.witness_timed_out, timeout),
        format!("{}/{}", emm.proofs, filter.unreachable.len()),
        secs(emm.proof_time),
    ]);
    println!("{}", table.render());

    let (expl, _) = explicit_model(&filter.design);
    println!("explicit model: {}", expl.stats());
    let exp = run_bank(&expl, &filter, timeout);
    table.row(&[
        "Explicit".into(),
        format!("{}/{}", exp.witnesses, filter.reachable.len()),
        exp.max_depth.to_string(),
        time_or_timeout(exp.witness_time, !exp.witness_timed_out, timeout),
        format!("{}/{}", exp.proofs, filter.unreachable.len()),
        secs(exp.proof_time),
    ]);
    println!("final:\n{}", table.render());
}
