//! CI bench-regression gate: diffs a fresh `BENCH_simplify.json` against
//! the committed baseline and fails on verdict changes or clause/variable
//! count regressions beyond a tolerance.
//!
//! Every `(benchmark, mode)` row of the baseline must exist in the fresh
//! file with the *same verdict* and with `clauses` and `vars` no more than
//! `--tolerance-pct` (default 5%) above the baseline. Wall times are
//! reported but never gated — CI machines are too noisy for that; counts
//! are deterministic. Rows that only exist in the fresh file (new modes,
//! new workloads) are listed as additions and pass.
//!
//! Improvements are not gated either, but they are not silent: a row
//! whose clause or variable count *drops* by more than the tolerance is
//! flagged as a **stale baseline** — the win should be committed to
//! `BENCH_simplify.json` rather than absorbed, or the next regression up
//! to the old level would pass unnoticed.
//!
//! In addition, `--require-modes` (a comma-separated list defaulting to
//! every mode the `simplify` harness emits, `rewrite6_fraig` and
//! `incremental` included)
//! demands that each benchmark of **both** files carries every named
//! mode — so a mode silently disappearing from the suite, or a stale
//! baseline missing a newly-shipped mode, fails the gate instead of
//! sliding through as "fewer rows to compare".
//!
//! The `server` section (`VerificationServer` throughput per pool size)
//! is gated separately: the fresh file **must** carry the section, a
//! fresh `jobs_per_sec` more than `--server-tolerance-pct` (default 10%)
//! below the baseline row fails — but only when both runs report the
//! same `cores` count, because throughput measured on different machines
//! is not comparable — and when the fresh machine has at least 4 cores,
//! the 4-worker row must clear 1.5× the 1-worker row (the core-scaling
//! contract of the work-stealing pool).
//!
//! `--summary <path>` appends a per-row markdown diff table (verdict,
//! clause/var deltas, status) plus a server-throughput table with a
//! jobs/sec column to the given file — pass
//! `"$GITHUB_STEP_SUMMARY"` in CI to render the whole diff on the run's
//! summary page instead of burying it in the log.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p emm-bench --bin bench_check -- \
//!     --baseline BENCH_simplify.json --fresh /tmp/fresh.json \
//!     [--tolerance-pct 5] [--require-modes naive,fraig,...] \
//!     [--summary "$GITHUB_STEP_SUMMARY"]
//! ```
//!
//! Exit code 0 on pass, 1 on any regression (with a per-row report).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::process::ExitCode;

use emm_bench::bench_json::{extract_f64, extract_str, extract_u64};

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Row {
    verdict: String,
    vars: u64,
    clauses: u64,
}

/// Parses the `runs` records of a bench JSON into `(benchmark, mode)`-keyed
/// rows. The format is the harness's own: one record per line.
fn parse(path: &str) -> Result<BTreeMap<(String, String), Row>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut rows = BTreeMap::new();
    for line in text.lines() {
        let Some(benchmark) = extract_str(line, "benchmark") else {
            continue;
        };
        let Some(mode) = extract_str(line, "mode") else {
            continue;
        };
        // Summary records carry reduction percentages, not counts; only
        // run records have a verdict.
        let Some(verdict) = extract_str(line, "verdict") else {
            continue;
        };
        let (Some(vars), Some(clauses)) = (extract_u64(line, "vars"), extract_u64(line, "clauses"))
        else {
            return Err(format!("{path}: run record without vars/clauses: {line}"));
        };
        rows.insert(
            (benchmark.to_string(), mode.to_string()),
            Row {
                verdict: verdict.to_string(),
                vars,
                clauses,
            },
        );
    }
    if rows.is_empty() {
        return Err(format!("{path}: no run records found"));
    }
    Ok(rows)
}

/// One `server` section row, keyed by worker count.
#[derive(Debug, Clone, PartialEq)]
struct ServerRow {
    jobs: u64,
    cores: u64,
    jobs_per_sec: f64,
}

/// Parses the `server` section rows (one record per line, identified by
/// their `jobs_per_sec` key). An empty map means the file has no server
/// section — the caller decides whether that fails.
fn parse_server(path: &str) -> Result<BTreeMap<u64, ServerRow>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut rows = BTreeMap::new();
    for line in text.lines() {
        let Some(jobs_per_sec) = extract_f64(line, "jobs_per_sec") else {
            continue;
        };
        let (Some(workers), Some(jobs), Some(cores)) = (
            extract_u64(line, "workers"),
            extract_u64(line, "jobs"),
            extract_u64(line, "cores"),
        ) else {
            return Err(format!("{path}: malformed server record: {line}"));
        };
        rows.insert(
            workers,
            ServerRow {
                jobs,
                cores,
                jobs_per_sec,
            },
        );
    }
    Ok(rows)
}

fn pct(fresh: u64, base: u64) -> f64 {
    100.0 * (fresh as f64 - base as f64) / base.max(1) as f64
}

/// Every benchmark in `rows` must carry every required mode; returns the
/// `(benchmark, mode)` holes found (reported on stdout).
fn check_required_modes(
    label: &str,
    rows: &BTreeMap<(String, String), Row>,
    required: &[String],
) -> Vec<(String, String)> {
    let mut missing = Vec::new();
    let benchmarks: std::collections::BTreeSet<&String> = rows.keys().map(|(b, _)| b).collect();
    for b in benchmarks {
        for m in required {
            if !rows.contains_key(&(b.clone(), m.clone())) {
                println!("  FAIL {b}/{m}: required mode missing from {label}");
                missing.push((b.clone(), m.clone()));
            }
        }
    }
    missing
}

/// The solver-inprocessing counters every fresh `incremental` and
/// `kinduction` row must carry. A fresh file missing them means the
/// harness silently stopped reporting the inprocessing work — fail the
/// gate rather than letting the columns rot.
const INPROCESS_U64_KEYS: [&str; 5] = [
    "vivified_literals",
    "subsumed_literals",
    "probed_literals",
    "failed_literals",
    "inprocess_rounds",
];

/// Checks that the inprocessing counter columns are present on the
/// fresh file's `incremental`/`kinduction` run records; returns the
/// `(benchmark/mode, missing keys)` holes found (reported on stdout).
fn check_inprocess_counters(path: &str) -> Result<Vec<(String, String)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut holes = Vec::new();
    for line in text.lines() {
        let (Some(benchmark), Some(mode), Some(_verdict)) = (
            extract_str(line, "benchmark"),
            extract_str(line, "mode"),
            extract_str(line, "verdict"),
        ) else {
            continue;
        };
        if mode != "incremental" && mode != "kinduction" {
            continue;
        }
        let mut missing: Vec<&str> = INPROCESS_U64_KEYS
            .iter()
            .filter(|k| extract_u64(line, k).is_none())
            .copied()
            .collect();
        if extract_f64(line, "inprocess_seconds").is_none() {
            missing.push("inprocess_seconds");
        }
        if !missing.is_empty() {
            let key = format!("{benchmark}/{mode}");
            println!(
                "  FAIL {key}: fresh run record missing inprocessing counter(s) {}",
                missing.join(", ")
            );
            holes.push((key, missing.join(", ")));
        }
    }
    Ok(holes)
}

/// Per-row outcome, for both the stdout report and the markdown summary.
enum Outcome {
    Ok,
    /// Improvement beyond the tolerance: baseline should be refreshed.
    Stale,
    Fail(String),
}

fn main() -> ExitCode {
    let baseline_path =
        arg_value("--baseline").unwrap_or_else(|| "BENCH_simplify.json".to_string());
    let fresh_path = arg_value("--fresh").unwrap_or_else(|| "BENCH_simplify.json".to_string());
    let tolerance: f64 = arg_value("--tolerance-pct")
        .and_then(|v| v.parse().ok())
        .unwrap_or(5.0);
    let server_tolerance: f64 = arg_value("--server-tolerance-pct")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10.0);
    let summary_path = arg_value("--summary");
    let required_modes: Vec<String> = arg_value("--require-modes")
        .unwrap_or_else(|| {
            "naive,simplified,simplified_sweep,fraig,rewrite_fraig,rewrite6_fraig,incremental"
                .to_string()
        })
        .split(',')
        .map(|m| m.trim().to_string())
        .filter(|m| !m.is_empty())
        .collect();

    let (baseline, fresh) = match (parse(&baseline_path), parse(&fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (b, f) => {
            for err in [b.err(), f.err()].into_iter().flatten() {
                eprintln!("bench_check: {err}");
            }
            return ExitCode::FAILURE;
        }
    };

    println!(
        "bench_check: {} baseline rows ({baseline_path}) vs {} fresh rows ({fresh_path}), \
         tolerance {tolerance}%",
        baseline.len(),
        fresh.len()
    );
    let mut failures = 0usize;
    let mut stale = 0usize;
    let mut table = String::from(
        "| benchmark / mode | verdict | clauses | Δ clauses | vars | Δ vars | status |\n\
         |---|---|---:|---:|---:|---:|---|\n",
    );
    for (b, m) in check_required_modes("baseline", &baseline, &required_modes) {
        let _ = writeln!(
            table,
            "| {b} / {m} | — | — | — | — | — | ❌ missing from baseline |"
        );
        failures += 1;
    }
    let missing_fresh: std::collections::BTreeSet<(String, String)> =
        check_required_modes("fresh run", &fresh, &required_modes)
            .into_iter()
            .collect();
    for (b, m) in &missing_fresh {
        let _ = writeln!(
            table,
            "| {b} / {m} | — | — | — | — | — | ❌ missing from fresh run |"
        );
        failures += 1;
    }
    for ((benchmark, mode), base) in &baseline {
        let key = format!("{benchmark}/{mode}");
        let Some(new) = fresh.get(&(benchmark.clone(), mode.clone())) else {
            // Required-mode holes were already reported and counted above;
            // only flag rows the required-modes check cannot see.
            if !missing_fresh.contains(&(benchmark.clone(), mode.clone())) {
                println!("  FAIL {key}: row missing from fresh run");
                let _ = writeln!(
                    table,
                    "| {benchmark} / {mode} | {} | {} | — | {} | — | ❌ missing from fresh run |",
                    base.verdict, base.clauses, base.vars
                );
                failures += 1;
            }
            continue;
        };
        let mut problems = Vec::new();
        if new.verdict != base.verdict {
            // A decisive baseline (proof or counterexample) collapsing to
            // `unknown:*` means the fresh run exhausted a resource budget
            // the baseline fit inside — a perf regression dressed up as a
            // verdict, so call it out as such.
            let decisive = base.verdict.starts_with("proof") || base.verdict.starts_with("cex");
            if decisive && new.verdict.starts_with("unknown") {
                problems.push(format!(
                    "decisive verdict {} degraded to {} (resource exhaustion)",
                    base.verdict, new.verdict
                ));
            } else {
                problems.push(format!("verdict {} -> {}", base.verdict, new.verdict));
            }
        }
        let dc = pct(new.clauses, base.clauses);
        if dc > tolerance {
            problems.push(format!(
                "clauses {} -> {} (+{dc:.1}%)",
                base.clauses, new.clauses
            ));
        }
        let dv = pct(new.vars, base.vars);
        if dv > tolerance {
            problems.push(format!("vars {} -> {} (+{dv:.1}%)", base.vars, new.vars));
        }
        let outcome = if !problems.is_empty() {
            Outcome::Fail(problems.join("; "))
        } else if dc < -tolerance || dv < -tolerance {
            Outcome::Stale
        } else {
            Outcome::Ok
        };
        let status = match &outcome {
            Outcome::Ok => {
                println!(
                    "  ok   {key}: {} (clauses {:+.1}%, vars {:+.1}%)",
                    new.verdict, dc, dv
                );
                "✅ ok".to_string()
            }
            Outcome::Stale => {
                stale += 1;
                println!(
                    "  ok   {key}: {} (clauses {:+.1}%, vars {:+.1}%) — improvement beyond \
                     tolerance: stale baseline, refresh {baseline_path}",
                    new.verdict, dc, dv
                );
                "⚠️ stale baseline — refresh".to_string()
            }
            Outcome::Fail(msg) => {
                println!("  FAIL {key}: {msg}");
                failures += 1;
                format!("❌ {msg}")
            }
        };
        let _ = writeln!(
            table,
            "| {benchmark} / {mode} | {} | {} → {} | {dc:+.1}% | {} → {} | {dv:+.1}% | {status} |",
            new.verdict, base.clauses, new.clauses, base.vars, new.vars
        );
    }
    // --- Inprocessing counter columns (fresh file only) -------------------
    // The baseline is allowed to predate the columns; the fresh harness
    // output is not.
    match check_inprocess_counters(&fresh_path) {
        Ok(holes) => {
            for (key, missing) in holes {
                let _ = writeln!(
                    table,
                    "| {key} | — | — | — | — | — | ❌ missing inprocessing counter(s): {missing} |"
                );
                failures += 1;
            }
        }
        Err(err) => {
            eprintln!("bench_check: {err}");
            return ExitCode::FAILURE;
        }
    }
    for (key, row) in &fresh {
        if !baseline.contains_key(key) {
            println!("  new  {}/{}: not in baseline (allowed)", key.0, key.1);
            let _ = writeln!(
                table,
                "| {} / {} | {} | {} | — | {} | — | new (not in baseline) |",
                key.0, key.1, row.verdict, row.clauses, row.vars
            );
        }
    }

    // --- VerificationServer throughput gate -------------------------------
    let (server_base, server_fresh) =
        match (parse_server(&baseline_path), parse_server(&fresh_path)) {
            (Ok(b), Ok(f)) => (b, f),
            (b, f) => {
                for err in [b.err(), f.err()].into_iter().flatten() {
                    eprintln!("bench_check: {err}");
                }
                return ExitCode::FAILURE;
            }
        };
    let mut server_table = String::from(
        "| workers | jobs | cores | jobs/sec (base → fresh) | Δ | status |\n\
         |---:|---:|---:|---:|---:|---|\n",
    );
    if server_fresh.is_empty() {
        println!("  FAIL server: fresh run has no server throughput section");
        let _ = writeln!(
            server_table,
            "| — | — | — | — | — | ❌ missing from fresh run |"
        );
        failures += 1;
    }
    for (workers, new) in &server_fresh {
        let key = format!("server/workers={workers}");
        let Some(base) = server_base.get(workers) else {
            println!(
                "  new  {key}: {:.2} jobs/sec, not in baseline (allowed)",
                new.jobs_per_sec
            );
            let _ = writeln!(
                server_table,
                "| {workers} | {} | {} | — → {:.2} | — | new (not in baseline) |",
                new.jobs, new.cores, new.jobs_per_sec
            );
            continue;
        };
        let drop_pct = 100.0 * (base.jobs_per_sec - new.jobs_per_sec) / base.jobs_per_sec.max(1e-9);
        let comparable = base.cores == new.cores && base.jobs == new.jobs;
        let status = if !comparable {
            println!(
                "  ok   {key}: {:.2} jobs/sec — not gated (baseline ran {} job(s) on {} \
                 core(s), fresh {} job(s) on {})",
                new.jobs_per_sec, base.jobs, base.cores, new.jobs, new.cores
            );
            "ok (different machine/batch — not gated)".to_string()
        } else if drop_pct > server_tolerance {
            println!(
                "  FAIL {key}: throughput {:.2} -> {:.2} jobs/sec (-{drop_pct:.1}%)",
                base.jobs_per_sec, new.jobs_per_sec
            );
            failures += 1;
            format!("❌ throughput -{drop_pct:.1}%")
        } else {
            println!(
                "  ok   {key}: {:.2} jobs/sec ({:+.1}% vs baseline)",
                new.jobs_per_sec, -drop_pct
            );
            "✅ ok".to_string()
        };
        let _ = writeln!(
            server_table,
            "| {workers} | {} | {} | {:.2} → {:.2} | {:+.1}% | {status} |",
            new.jobs, new.cores, base.jobs_per_sec, new.jobs_per_sec, -drop_pct
        );
    }
    // Core-scaling contract: on a machine that can actually run 4 workers
    // in parallel, the 4-worker batch must beat the 1-worker batch by 1.5x.
    if let (Some(one), Some(four)) = (server_fresh.get(&1), server_fresh.get(&4)) {
        if four.cores >= 4 {
            let scaling = four.jobs_per_sec / one.jobs_per_sec.max(1e-9);
            if scaling < 1.5 {
                println!(
                    "  FAIL server: 4-worker throughput only {scaling:.2}x the 1-worker row \
                     on a {}-core machine (need ≥1.5x)",
                    four.cores
                );
                let _ = writeln!(
                    server_table,
                    "| 4 vs 1 | — | {} | — | {scaling:.2}x | ❌ core-scaling below 1.5x |",
                    four.cores
                );
                failures += 1;
            } else {
                println!("  ok   server: 4-worker scaling {scaling:.2}x over 1 worker");
                let _ = writeln!(
                    server_table,
                    "| 4 vs 1 | — | {} | — | {scaling:.2}x | ✅ core-scaling ok |",
                    four.cores
                );
            }
        } else {
            println!(
                "  ok   server: {} core(s) — core-scaling contract not applicable",
                four.cores
            );
        }
    }

    let verdict_line = if failures > 0 {
        format!("**{failures} row(s) regressed** — gate fails.")
    } else if stale > 0 {
        format!(
            "Pass, but {stale} row(s) improved beyond the {tolerance}% tolerance — \
             **stale baseline**: regenerate `{baseline_path}` \
             (`cargo run --release -p emm-bench --bin simplify`) so the win is locked in."
        )
    } else {
        "All rows within tolerance.".to_string()
    };
    if let Some(path) = summary_path {
        // Append (GITHUB_STEP_SUMMARY accumulates across steps).
        use std::io::Write as _;
        let md = format!(
            "## Bench regression gate\n\nBaseline `{baseline_path}` vs fresh \
             `{fresh_path}`, tolerance {tolerance}%.\n\n{table}\n\
             ### Server throughput (tolerance {server_tolerance}%)\n\n\
             {server_table}\n{verdict_line}\n"
        );
        match std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            Ok(mut f) => {
                if let Err(e) = f.write_all(md.as_bytes()) {
                    eprintln!("bench_check: cannot write summary {path}: {e}");
                }
            }
            Err(e) => eprintln!("bench_check: cannot open summary {path}: {e}"),
        }
    }
    if failures > 0 {
        eprintln!("bench_check: {failures} row(s) regressed");
        return ExitCode::FAILURE;
    }
    if stale > 0 {
        println!("bench_check: pass ({stale} stale-baseline warning(s) — refresh {baseline_path})");
    } else {
        println!("bench_check: pass");
    }
    ExitCode::SUCCESS
}
