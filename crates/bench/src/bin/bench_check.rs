//! CI bench-regression gate: diffs a fresh `BENCH_simplify.json` against
//! the committed baseline and fails on verdict changes or clause/variable
//! count regressions beyond a tolerance.
//!
//! Every `(benchmark, mode)` row of the baseline must exist in the fresh
//! file with the *same verdict* and with `clauses` and `vars` no more than
//! `--tolerance-pct` (default 5%) above the baseline. Wall times are
//! reported but never gated — CI machines are too noisy for that; counts
//! are deterministic. Rows that only exist in the fresh file (new modes,
//! new workloads) are listed as additions and pass.
//!
//! In addition, `--require-modes` (a comma-separated list defaulting to
//! every mode the `simplify` harness emits, `rewrite_fraig` included)
//! demands that each benchmark of **both** files carries every named
//! mode — so a mode silently disappearing from the suite, or a stale
//! baseline missing a newly-shipped mode, fails the gate instead of
//! sliding through as "fewer rows to compare".
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p emm-bench --bin bench_check -- \
//!     --baseline BENCH_simplify.json --fresh /tmp/fresh.json \
//!     [--tolerance-pct 5] [--require-modes naive,fraig,...]
//! ```
//!
//! Exit code 0 on pass, 1 on any regression (with a per-row report).

use std::collections::BTreeMap;
use std::process::ExitCode;

use emm_bench::bench_json::{extract_str, extract_u64};

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Row {
    verdict: String,
    vars: u64,
    clauses: u64,
}

/// Parses the `runs` records of a bench JSON into `(benchmark, mode)`-keyed
/// rows. The format is the harness's own: one record per line.
fn parse(path: &str) -> Result<BTreeMap<(String, String), Row>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut rows = BTreeMap::new();
    for line in text.lines() {
        let Some(benchmark) = extract_str(line, "benchmark") else {
            continue;
        };
        let Some(mode) = extract_str(line, "mode") else {
            continue;
        };
        // Summary records carry reduction percentages, not counts; only
        // run records have a verdict.
        let Some(verdict) = extract_str(line, "verdict") else {
            continue;
        };
        let (Some(vars), Some(clauses)) = (extract_u64(line, "vars"), extract_u64(line, "clauses"))
        else {
            return Err(format!("{path}: run record without vars/clauses: {line}"));
        };
        rows.insert(
            (benchmark.to_string(), mode.to_string()),
            Row {
                verdict: verdict.to_string(),
                vars,
                clauses,
            },
        );
    }
    if rows.is_empty() {
        return Err(format!("{path}: no run records found"));
    }
    Ok(rows)
}

fn pct(fresh: u64, base: u64) -> f64 {
    100.0 * (fresh as f64 - base as f64) / base.max(1) as f64
}

/// Every benchmark in `rows` must carry every required mode; returns the
/// number of `(benchmark, mode)` holes found (reported on stdout).
fn check_required_modes(
    label: &str,
    rows: &BTreeMap<(String, String), Row>,
    required: &[String],
) -> usize {
    let mut missing = 0usize;
    let benchmarks: std::collections::BTreeSet<&String> = rows.keys().map(|(b, _)| b).collect();
    for b in benchmarks {
        for m in required {
            if !rows.contains_key(&(b.clone(), m.clone())) {
                println!("  FAIL {b}/{m}: required mode missing from {label}");
                missing += 1;
            }
        }
    }
    missing
}

fn main() -> ExitCode {
    let baseline_path =
        arg_value("--baseline").unwrap_or_else(|| "BENCH_simplify.json".to_string());
    let fresh_path = arg_value("--fresh").unwrap_or_else(|| "BENCH_simplify.json".to_string());
    let tolerance: f64 = arg_value("--tolerance-pct")
        .and_then(|v| v.parse().ok())
        .unwrap_or(5.0);
    let required_modes: Vec<String> = arg_value("--require-modes")
        .unwrap_or_else(|| "naive,simplified,simplified_sweep,fraig,rewrite_fraig".to_string())
        .split(',')
        .map(|m| m.trim().to_string())
        .filter(|m| !m.is_empty())
        .collect();

    let (baseline, fresh) = match (parse(&baseline_path), parse(&fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (b, f) => {
            for err in [b.err(), f.err()].into_iter().flatten() {
                eprintln!("bench_check: {err}");
            }
            return ExitCode::FAILURE;
        }
    };

    println!(
        "bench_check: {} baseline rows ({baseline_path}) vs {} fresh rows ({fresh_path}), \
         tolerance {tolerance}%",
        baseline.len(),
        fresh.len()
    );
    let mut failures = 0usize;
    failures += check_required_modes("baseline", &baseline, &required_modes);
    failures += check_required_modes("fresh run", &fresh, &required_modes);
    for ((benchmark, mode), base) in &baseline {
        let key = format!("{benchmark}/{mode}");
        let Some(new) = fresh.get(&(benchmark.clone(), mode.clone())) else {
            println!("  FAIL {key}: row missing from fresh run");
            failures += 1;
            continue;
        };
        let mut problems = Vec::new();
        if new.verdict != base.verdict {
            problems.push(format!("verdict {} -> {}", base.verdict, new.verdict));
        }
        let dc = pct(new.clauses, base.clauses);
        if dc > tolerance {
            problems.push(format!(
                "clauses {} -> {} (+{dc:.1}%)",
                base.clauses, new.clauses
            ));
        }
        let dv = pct(new.vars, base.vars);
        if dv > tolerance {
            problems.push(format!("vars {} -> {} (+{dv:.1}%)", base.vars, new.vars));
        }
        if problems.is_empty() {
            println!(
                "  ok   {key}: {} (clauses {:+.1}%, vars {:+.1}%)",
                new.verdict, dc, dv
            );
        } else {
            println!("  FAIL {key}: {}", problems.join("; "));
            failures += 1;
        }
    }
    for key in fresh.keys() {
        if !baseline.contains_key(key) {
            println!("  new  {}/{}: not in baseline (allowed)", key.0, key.1);
        }
    }
    if failures > 0 {
        eprintln!("bench_check: {failures} row(s) regressed");
        return ExitCode::FAILURE;
    }
    println!("bench_check: pass");
    ExitCode::SUCCESS
}
