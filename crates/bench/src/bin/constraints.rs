//! Regenerates the **Section 4.1 constraint-size law** (the paper's
//! analytic result): the EMM constraints added at analysis depth `k` for a
//! memory with `R` read and `W` write ports, address width `m` and data
//! width `n` total `((4m + 2n + 1)·k·W + 2n + 1)·R` clauses and `3·k·W·R`
//! gates — quadratic accumulated growth, versus the `2^m · n` latches (and
//! associated mux/decoder gates) of the explicit model.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p emm-bench --bin constraints -- [--depth K]
//! ```

use emm_bench::Table;
use emm_core::{EmmEncoder, EmmOptions, MemoryFrameLits, MemoryShape, PortLits};
use emm_sat::{CnfSink, CountingSink};

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn fresh_frame(sink: &mut dyn CnfSink, shape: &MemoryShape) -> MemoryFrameLits {
    let port = |sink: &mut dyn CnfSink| PortLits {
        addr: (0..shape.addr_width)
            .map(|_| sink.new_var().positive())
            .collect(),
        en: sink.new_var().positive(),
        data: (0..shape.data_width)
            .map(|_| sink.new_var().positive())
            .collect(),
    };
    MemoryFrameLits {
        reads: (0..shape.read_ports).map(|_| port(sink)).collect(),
        writes: (0..shape.write_ports).map(|_| port(sink)).collect(),
    }
}

fn main() {
    let max_depth: usize = arg_value("--depth")
        .and_then(|v| v.parse().ok())
        .unwrap_or(24);

    // The paper's three memory shapes.
    let shapes = [
        (
            "quicksort array (m=10,n=32,1R1W)",
            10usize,
            32usize,
            1usize,
            1usize,
        ),
        ("image filter buffer (m=10,n=8,1R1W)", 10, 8, 1, 1),
        ("lookup table (m=12,n=32,3R1W)", 12, 32, 3, 1),
    ];

    for (label, m, n, r, w) in shapes {
        let shape = MemoryShape {
            addr_width: m,
            data_width: n,
            read_ports: r,
            write_ports: w,
            arbitrary_init: true,
        };
        let mut encoder = EmmEncoder::new(
            &[shape],
            EmmOptions {
                skip_init_consistency: true,
                ..EmmOptions::default()
            },
        );
        let mut sink = CountingSink::new();
        let mut table = Table::new(&[
            "k",
            "clauses (measured)",
            "clauses (formula)",
            "gates (measured)",
            "gates (formula)",
            "cumulative clauses",
        ]);
        let mut mismatches = 0;
        for k in 0..max_depth {
            let frame = fresh_frame(&mut sink, &shape);
            encoder.add_frame(&mut sink, &[frame]);
            let inc = encoder.per_frame_stats(0)[k];
            let formula_clauses = shape.clauses_at_depth(k);
            let formula_gates = shape.gates_at_depth(k);
            if inc.clauses != formula_clauses || inc.gates != formula_gates {
                mismatches += 1;
            }
            if k % 4 == 0 || k == max_depth - 1 {
                table.row(&[
                    k.to_string(),
                    inc.clauses.to_string(),
                    formula_clauses.to_string(),
                    inc.gates.to_string(),
                    formula_gates.to_string(),
                    encoder.stats().clauses.to_string(),
                ]);
            }
        }
        let explicit_bits = (1usize << m) * n;
        println!("{label}");
        println!(
            "explicit-model cost for comparison: {} latches ({} per read-port mux leaf)",
            explicit_bits,
            1usize << m
        );
        println!("{}", table.render());
        println!(
            "formula check: {} mismatches across {max_depth} depths ({})",
            mismatches,
            if mismatches == 0 { "exact" } else { "FAILED" },
        );
        println!();
    }
}
