//! Frontend corpus runner: sweeps a directory of `.aag`/`.aig`/`.btor2`
//! files end-to-end through the [`ModelSource`] frontend and both proof
//! engines, and writes a machine-readable `BENCH_corpus.json` in the
//! same flat-record format as `BENCH_simplify.json` (CI's
//! `frontend-corpus` step diffs fresh numbers against the committed file
//! via the `bench_check` binary with `--require-modes bounded,induction`).
//!
//! Every property of every parsed design becomes two rows keyed
//! `"<file stem>:p<index>"`:
//!
//! * `bounded` — the [`BmcEngine`] loop up to `--max-depth`, recording
//!   the verdict, depth, wall time, and the anchored solver's
//!   variable/clause counts (what the encoders actually emitted under
//!   the default simplifying pipeline);
//! * `induction` — the [`KInduction`] engine over the same depth budget
//!   (base-case solver counts, comparable to the bounded row).
//!
//! The whole corpus is then replayed through [`VerificationServer`]
//! batches at pool sizes 1 and 4 via
//! [`submit_model`](VerificationServer::submit_model): the verdicts must
//! be identical to the direct bounded rows *and* across worker counts
//! (a cheap standing differential), and the batch throughput lands in
//! the `server` section `bench_check` requires on every fresh file.
//!
//! `--emit` (re)generates the golden corpus before sweeping: the paper's
//! Table 1 / Table 2 quicksort workloads and the `emm-designs` case
//! studies written as `.btor2`, the explicit-model (memory-free)
//! variants and two seeded generated designs written as ASCII and binary
//! AIGER.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p emm-bench --bin corpus -- \
//!     [--dir corpus] [--out BENCH_corpus.json] [--max-depth 10] \
//!     [--timeout SECS] [--emit]
//! ```

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use emm_aig::aiger::{write_aiger_ascii, write_aiger_binary};
use emm_aig::btor2::write_btor2;
use emm_aig::Design;
use emm_bmc::{
    BmcEngine, BmcVerdict, KInduction, ModelSource, VerificationServer, VerifyBudget, VerifyOptions,
};
use emm_core::explicit_model;
use emm_designs::fifo::{Fifo, FifoConfig};
use emm_designs::gen::{random_design, GenConfig};
use emm_designs::image_filter::{ImageFilter, ImageFilterConfig};
use emm_designs::lifo::{Lifo, LifoConfig};
use emm_designs::memcpy::{Memcpy, MemcpyConfig};
use emm_designs::quicksort::{QuickSort, QuickSortConfig};
use emm_designs::regfile::{RegFile, RegFileConfig};

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn verdict_name(v: &BmcVerdict) -> String {
    match v {
        BmcVerdict::Proof { depth, .. } => format!("proof@{depth}"),
        BmcVerdict::Counterexample(t) => format!("cex@{}", t.depth()),
        BmcVerdict::BoundReached => "bound".into(),
        BmcVerdict::Proved { k } => format!("proved@{k}"),
        BmcVerdict::Unknown { reason, .. } => format!("unknown:{}", reason.as_str()),
    }
}

struct Row {
    benchmark: String,
    mode: &'static str,
    verdict: String,
    depth: usize,
    seconds: f64,
    vars: usize,
    clauses: u64,
    emm_clauses: usize,
}

struct ServerRow {
    workers: usize,
    jobs: usize,
    cores: usize,
    elapsed_seconds: f64,
    jobs_per_sec: f64,
}

/// Writes the golden corpus files into `dir`.
fn emit_corpus(dir: &Path) {
    std::fs::create_dir_all(dir).expect("create corpus dir");
    let write = |name: &str, bytes: Vec<u8>| {
        let path = dir.join(name);
        std::fs::write(&path, bytes).expect("write corpus file");
        println!("emitted {}", path.display());
    };

    // Table 1 / Table 2 workloads: quicksort P1 + P2, scaled to corpus
    // size (the full-size sweeps live in the simplify/table harnesses).
    for n in [3usize, 4] {
        let qs = QuickSort::new(QuickSortConfig {
            n,
            addr_width: 4,
            data_width: 3,
            bug: Default::default(),
        });
        write(
            &format!("quicksort_n{n}.btor2"),
            write_btor2(&qs.design).expect("btor2").into_bytes(),
        );
    }

    // Industry-style case studies.
    let fifo = Fifo::new(FifoConfig {
        addr_width: 2,
        data_width: 2,
    });
    write(
        "fifo_a2d2.btor2",
        write_btor2(&fifo.design).expect("btor2").into_bytes(),
    );
    let lifo = Lifo::new(LifoConfig {
        addr_width: 2,
        data_width: 2,
    });
    write(
        "lifo_a2d2.btor2",
        write_btor2(&lifo.design).expect("btor2").into_bytes(),
    );
    let regfile = RegFile::new(RegFileConfig {
        addr_width: 2,
        data_width: 2,
        read_ports: 2,
        write_ports: 1,
        watched: 1,
    });
    write(
        "regfile_r2w1.btor2",
        write_btor2(&regfile.design).expect("btor2").into_bytes(),
    );
    let memcpy = Memcpy::new(MemcpyConfig {
        len: 3,
        addr_width: 2,
        data_width: 2,
    });
    write(
        "memcpy_l3.btor2",
        write_btor2(&memcpy.design).expect("btor2").into_bytes(),
    );
    let filter = ImageFilter::new(ImageFilterConfig {
        line_length: 4,
        addr_width: 2,
        data_width: 2,
        reachable_properties: 4,
        unreachable_properties: 2,
        max_witness_depth: 8,
    });
    write(
        "image_filter_l4.btor2",
        write_btor2(&filter.design).expect("btor2").into_bytes(),
    );

    // AIGER needs memory-free designs: the explicit-model variants of
    // two case studies (one ASCII, one binary)...
    let (fifo_explicit, _) = explicit_model(&fifo.design);
    write(
        "fifo_a2d2_explicit.aag",
        write_aiger_ascii(&fifo_explicit)
            .expect("aiger")
            .into_bytes(),
    );
    let (lifo_explicit, _) = explicit_model(&lifo.design);
    write(
        "lifo_a2d2_explicit.aig",
        write_aiger_binary(&lifo_explicit).expect("aiger"),
    );
    // ...and two seeded generated designs from the fuzz generator.
    write(
        "gen_s7.aag",
        write_aiger_ascii(&random_design(&GenConfig::aiger(), 7))
            .expect("aiger")
            .into_bytes(),
    );
    write(
        "gen_s11.aig",
        write_aiger_binary(&random_design(&GenConfig::aiger(), 11)).expect("aiger"),
    );
}

/// The corpus files of `dir`, sorted by name for deterministic rows.
fn corpus_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("cannot read corpus dir {}: {e}", dir.display()))
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            matches!(
                p.extension().and_then(|e| e.to_str()),
                Some("aag") | Some("aig") | Some("btor") | Some("btor2")
            )
        })
        .collect();
    files.sort();
    files
}

fn stem(path: &Path) -> String {
    path.file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("unnamed")
        .to_string()
}

fn options(timeout: Duration) -> VerifyOptions {
    VerifyOptions::default().wall_limit(Some(timeout))
}

fn run_rows(name: &str, design: &Arc<Design>, max_depth: usize, timeout: Duration) -> Vec<Row> {
    let mut rows = Vec::new();
    for prop in 0..design.properties().len() {
        let benchmark = format!("{name}:p{prop}");

        let started = Instant::now();
        let mut engine = BmcEngine::new(design.as_ref(), options(timeout));
        let run = engine.check(prop, max_depth).expect("bounded check");
        let seconds = started.elapsed().as_secs_f64();
        let (vars, stats) = engine.solver_stats();
        rows.push(Row {
            benchmark: benchmark.clone(),
            mode: "bounded",
            verdict: verdict_name(&run.verdict),
            depth: run.depth_reached,
            seconds,
            vars,
            clauses: stats.original_clauses,
            emm_clauses: engine.emm_stats().clauses,
        });

        let started = Instant::now();
        let mut engine = KInduction::new(design.as_ref(), options(timeout));
        let run = engine.check(prop, max_depth).expect("induction check");
        let seconds = started.elapsed().as_secs_f64();
        let (vars, stats) = engine.base().solver_stats();
        rows.push(Row {
            benchmark,
            mode: "induction",
            verdict: verdict_name(&run.verdict),
            depth: run.depth_reached,
            seconds,
            vars,
            clauses: stats.original_clauses,
            emm_clauses: engine.base().emm_stats().clauses,
        });
    }
    rows
}

/// Replays the whole corpus through [`VerificationServer::submit_model`]
/// batches at pool sizes 1 and 4. Returns the throughput rows; panics if
/// any job errors, if verdicts differ across worker counts, or if a
/// bounded verdict disagrees with the direct engine row.
fn run_server(
    designs: &[(String, Arc<Design>)],
    direct: &[Row],
    max_depth: usize,
    timeout: Duration,
) -> Vec<ServerRow> {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let budget = VerifyBudget {
        max_depth,
        wall_limit: Some(timeout),
        ..VerifyBudget::default()
    };
    let mut rows = Vec::new();
    let mut baseline: Option<Vec<String>> = None;
    for workers in [1usize, 4] {
        let mut server = VerificationServer::new(workers);
        let mut labels = Vec::new();
        for (name, design) in designs {
            let source = ModelSource::Design(Arc::clone(design));
            let ids = server
                .submit_model(&source, &budget, &options(timeout))
                .expect("in-memory source always loads");
            for (prop, _) in ids.iter().enumerate() {
                labels.push(format!("{name}:p{prop}"));
            }
        }
        let responses = server.run();
        let verdicts: Vec<String> = responses
            .iter()
            .map(|r| {
                assert!(r.error.is_none(), "server job error: {:?}", r.error);
                verdict_name(&r.verdict)
            })
            .collect();
        // Standing differential 1: the server's bounded verdicts must
        // match the direct BmcEngine rows benchmark-by-benchmark.
        for (label, verdict) in labels.iter().zip(&verdicts) {
            let direct_row = direct
                .iter()
                .find(|r| &r.benchmark == label && r.mode == "bounded")
                .unwrap_or_else(|| panic!("no direct row for {label}"));
            assert_eq!(
                &direct_row.verdict, verdict,
                "{label}: server verdict diverged from direct engine"
            );
        }
        // Standing differential 2: bit-identical batches at every pool size.
        match &baseline {
            None => baseline = Some(verdicts),
            Some(first) => assert_eq!(
                first, &verdicts,
                "server verdicts diverged between worker counts"
            ),
        }
        let stats = server.stats();
        rows.push(ServerRow {
            workers,
            jobs: stats.jobs,
            cores,
            elapsed_seconds: stats.elapsed_seconds,
            jobs_per_sec: stats.jobs_per_sec,
        });
    }
    rows
}

fn main() {
    let dir = PathBuf::from(arg_value("--dir").unwrap_or_else(|| "corpus".to_string()));
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_corpus.json".to_string());
    let max_depth: usize = arg_value("--max-depth")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let timeout = Duration::from_secs(
        arg_value("--timeout")
            .and_then(|v| v.parse().ok())
            .unwrap_or(60),
    );
    if arg_flag("--emit") {
        emit_corpus(&dir);
    }

    let files = corpus_files(&dir);
    assert!(
        !files.is_empty(),
        "no .aag/.aig/.btor2 files under {} (run with --emit to generate the golden corpus)",
        dir.display()
    );
    println!(
        "corpus sweep: {} file(s) under {}, max depth {max_depth}, timeout {}s",
        files.len(),
        dir.display(),
        timeout.as_secs()
    );

    let mut designs: Vec<(String, Arc<Design>)> = Vec::new();
    let mut rows: Vec<Row> = Vec::new();
    for path in &files {
        let design = ModelSource::from_path(path)
            .load()
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let name = stem(path);
        let file_rows = run_rows(&name, &design, max_depth, timeout);
        for r in &file_rows {
            println!(
                "{:>28} {:>10}: {:>10}  {:.1}s  vars={} clauses={}",
                r.benchmark, r.mode, r.verdict, r.seconds, r.vars, r.clauses
            );
        }
        rows.extend(file_rows);
        designs.push((name, design));
    }

    println!();
    println!("VerificationServer corpus replay:");
    let server_rows = run_server(&designs, &rows, max_depth, timeout);
    for row in &server_rows {
        println!(
            "{:>28} workers={}: {} jobs in {:.1}s = {:.2} jobs/sec ({} core(s))",
            "server", row.workers, row.jobs, row.elapsed_seconds, row.jobs_per_sec, row.cores
        );
    }

    let mut json = String::new();
    json.push_str("{\n  \"suite\": \"corpus\",\n");
    writeln!(
        json,
        "  \"config\": {{\"dir\": \"{}\", \"max_depth\": {max_depth}, \"timeout_secs\": {}}},",
        dir.display(),
        timeout.as_secs()
    )
    .expect("write");
    json.push_str("  \"runs\": [\n");
    json.push_str(
        &rows
            .iter()
            .map(|r| {
                format!(
                    "    {{\"benchmark\": \"{}\", \"mode\": \"{}\", \"verdict\": \"{}\", \
                     \"depth\": {}, \"seconds\": {:.3}, \"vars\": {}, \"clauses\": {}, \
                     \"emm_clauses\": {}}}",
                    r.benchmark,
                    r.mode,
                    r.verdict,
                    r.depth,
                    r.seconds,
                    r.vars,
                    r.clauses,
                    r.emm_clauses
                )
            })
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    json.push_str("\n  ],\n  \"server\": [\n");
    json.push_str(
        &server_rows
            .iter()
            .map(|r| {
                format!(
                    "    {{\"workers\": {}, \"jobs\": {}, \"cores\": {}, \
                     \"elapsed_seconds\": {:.3}, \"jobs_per_sec\": {:.3}}}",
                    r.workers, r.jobs, r.cores, r.elapsed_seconds, r.jobs_per_sec
                )
            })
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    json.push_str("\n  ]\n}\n");
    std::fs::write(&out, json).expect("write corpus bench json");
    println!("\nwrote {out}");
}
