//! Measures the encoding-reduction layers on the paper's Table 1 /
//! Table 2 quicksort workloads and writes a machine-readable
//! `BENCH_simplify.json` so later PRs have a perf trajectory to compare
//! against (CI's `bench-regression` job diffs fresh numbers against the
//! committed file via the `bench_check` binary).
//!
//! For every workload the same property is checked once per mode — the
//! naive seed encoding (`SimplifyConfig::disabled`), the simplifying sink
//! (default config), the sink plus encode-time SAT sweeping, the
//! AIG-level fraig pass on top of the default sink, cut-based rewriting
//! ahead of fraig (the engine default, k = 4 cuts with global
//! selection), wide-cut rewriting (`RewriteConfig::wide()`: k = 6
//! cuts, `u64` truth tables) ahead of fraig, the `incremental`
//! solver-lifecycle row (the sweeping sink solved bound-to-bound on one
//! long-lived solver with clause retirement, against a
//! restart-from-scratch leg of the same configuration), and the
//! `kinduction` row (the unbounded engine's interleaved base case and
//! floating inductive step, recording per-depth seconds, step-query
//! counts, and step-group retirement totals) — recording solver
//! variable/clause counts at the deepest checked frame, wall time
//! (per-bound for the incremental pair and the k loop), retired-clause
//! totals, and the layers' cache / sweep / fraig / rewrite counters.
//!
//! A final `server` section measures `VerificationServer` batch
//! throughput (jobs/sec) at pool sizes 1, 2, and 4 on the quicksort
//! `n = 3` workload, recording the machine's core count alongside so the
//! CI gate can judge core-scaling honestly.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p emm-bench --bin simplify -- [--aw A] [--dw D] [--max-n N] [--timeout SECS] [--out PATH]
//! ```

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use emm_aig::{FraigConfig, RewriteConfig};
use emm_bench::secs;
use emm_bmc::{
    BmcEngine, BmcOptions, BmcVerdict, KInduction, VerificationServer, VerifyBudget, VerifyOptions,
    VerifyRequest,
};
use emm_designs::quicksort::{QuickSort, QuickSortConfig};
use emm_sat::SimplifyConfig;

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

struct RunRecord {
    benchmark: String,
    mode: &'static str,
    verdict: String,
    /// Governor exhaustion reason when the verdict is `unknown:*`
    /// (`deadline`, `conflict_limit`, ...), `None` for decisive runs.
    exhaustion: Option<String>,
    depth: usize,
    seconds: f64,
    vars: usize,
    clauses: u64,
    emm_clauses: usize,
    cmp_cache_hits: usize,
    simplify: Option<emm_sat::SimplifyStats>,
    fraig: Option<emm_aig::FraigStats>,
    rewrite: Option<emm_aig::RewriteStats>,
    incremental: Option<IncrementalExtras>,
    kinduction: Option<KinductionExtras>,
}

/// The `kinduction` mode's extra measurements: the floating step
/// context's solver footprint and the per-depth lifecycle counters. The
/// headline `vars`/`clauses` columns stay the *base-case* solver's, so
/// they remain comparable to the anchored rows; the step side lives
/// here.
struct KinductionExtras {
    /// Depth ceiling handed to the engine (a fixed cap — see the
    /// dispatch site in `main`).
    max_k: usize,
    /// Step queries run to completion (SAT or UNSAT).
    step_queries: u64,
    /// Clauses physically retired from per-depth step activation groups
    /// (the group of depth `k` holds `k + 1` clauses, always retired).
    step_clauses_retired: u64,
    /// Deepest depth where induction failed (step query SAT), if any.
    steps_failed: Option<usize>,
    /// Variable count of the step solver at exit.
    step_vars: usize,
    /// Clause count of the step solver at exit.
    step_clauses: u64,
    /// Wall seconds per interleaved base-bound/step-depth iteration.
    per_k_seconds: Vec<f64>,
    /// Between-depths inprocessing counters, base + step solvers summed.
    inprocess: InprocessCounters,
}

/// The inprocessing counters recorded on the solver-lifecycle rows
/// (`incremental`, `kinduction`): literals removed per technique plus
/// completed rounds and the wall seconds the engine spent in
/// [`emm_sat::Solver::inprocess`] between bounds/depths.
struct InprocessCounters {
    vivified_literals: u64,
    subsumed_literals: u64,
    probed_literals: u64,
    failed_literals: u64,
    inprocess_rounds: u64,
    inprocess_seconds: f64,
}

impl InprocessCounters {
    fn from_stats(stats: &[emm_sat::SolverStats], seconds: f64) -> InprocessCounters {
        InprocessCounters {
            vivified_literals: stats.iter().map(|s| s.vivified_literals).sum(),
            subsumed_literals: stats.iter().map(|s| s.subsumed_literals).sum(),
            probed_literals: stats.iter().map(|s| s.probed_literals).sum(),
            failed_literals: stats.iter().map(|s| s.failed_literals).sum(),
            inprocess_rounds: stats.iter().map(|s| s.inprocess_rounds).sum(),
            inprocess_seconds: seconds,
        }
    }
}

/// The `incremental` mode's extra measurements: solver-side clause
/// retirement totals and the per-bound wall-clock comparison against the
/// restart-from-scratch baseline (same config, `incremental: false`).
struct IncrementalExtras {
    /// Clauses physically retired by the anchored solver (sweep-merged
    /// Tseitin triples + refuted per-bound property clauses).
    retired_clauses: u64,
    /// The property-clause share of `retired_clauses`.
    property_clauses_retired: u64,
    /// Wall seconds per bound, incremental engine.
    per_bound_seconds: Vec<f64>,
    /// Total wall seconds of the restart-from-scratch leg.
    restart_seconds: f64,
    /// Verdict of the restart leg (must match the row's `verdict`).
    restart_verdict: String,
    /// Wall seconds per bound, restart engine.
    restart_per_bound_seconds: Vec<f64>,
    /// Between-bounds inprocessing counters of the anchored solver.
    inprocess: InprocessCounters,
}

fn verdict_name(v: &BmcVerdict) -> String {
    match v {
        BmcVerdict::Proof { depth, .. } => format!("proof@{depth}"),
        BmcVerdict::Counterexample(t) => format!("cex@{}", t.depth()),
        BmcVerdict::BoundReached => "bound".into(),
        BmcVerdict::Proved { k } => format!("proved@{k}"),
        BmcVerdict::Unknown { reason, .. } => format!("unknown:{}", reason.as_str()),
    }
}

/// The exhaustion reason alone, for the dedicated JSON field — lets
/// `bench_check` and ad-hoc tooling distinguish a deadline trip from a
/// conflict-cap or memory-ceiling trip without parsing the verdict.
fn exhaustion_name(v: &BmcVerdict) -> Option<String> {
    match v {
        BmcVerdict::Unknown { reason, .. } => Some(reason.as_str().to_string()),
        _ => None,
    }
}

/// The eight measured encoder configurations.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// The seed encoding: no sink layer, no comparator cache, no fraig.
    Naive,
    /// The PR-1 sink: hashing + folding + lazy emission + cmp cache.
    Simplified,
    /// The sink plus encode-time SAT sweeping.
    SimplifiedSweep,
    /// AIG-level fraiging before unrolling, on top of the default sink.
    Fraig,
    /// The engine default: cut-based rewriting (k = 4, global
    /// selection), then fraiging, then the default sink.
    RewriteFraig,
    /// Wide-cut rewriting (`RewriteConfig::wide()`: k = 6 cuts over
    /// `u64` truth tables), then fraiging, then the default sink.
    Rewrite6Fraig,
    /// The sweeping sink measured as a *solver lifecycle* row: one
    /// long-lived solver across the bound loop with per-bound property
    /// clauses retired on refutation and sweep-merged Tseitin triples
    /// physically deleted, against a restart-from-scratch leg of the
    /// same configuration (verdicts must agree; per-bound wall clock is
    /// the headline number).
    Incremental,
    /// The k-induction engine as its own lifecycle row: interleaved
    /// base case and floating inductive step on the sweeping sink, with
    /// per-depth step clauses retired through activation groups. The
    /// quicksort loop counter keeps the recurrence diameter far beyond
    /// the sort bound, so induction honestly reports `bound` on these
    /// workloads — the row pins the step context's encoding cost and
    /// the per-depth retirement totals, not a closure.
    Kinduction,
}

impl Mode {
    const ALL: [Mode; 8] = [
        Mode::Naive,
        Mode::Simplified,
        Mode::SimplifiedSweep,
        Mode::Fraig,
        Mode::RewriteFraig,
        Mode::Rewrite6Fraig,
        Mode::Incremental,
        Mode::Kinduction,
    ];

    fn name(self) -> &'static str {
        match self {
            Mode::Naive => "naive",
            Mode::Simplified => "simplified",
            Mode::SimplifiedSweep => "simplified_sweep",
            Mode::Fraig => "fraig",
            Mode::RewriteFraig => "rewrite_fraig",
            Mode::Rewrite6Fraig => "rewrite6_fraig",
            Mode::Incremental => "incremental",
            Mode::Kinduction => "kinduction",
        }
    }
}

fn run_one(
    benchmark: &str,
    design: &emm_aig::Design,
    prop: usize,
    bound: usize,
    timeout: Duration,
    mode: Mode,
) -> RunRecord {
    let simplify = match mode {
        Mode::Naive => SimplifyConfig::disabled(),
        Mode::Simplified | Mode::Fraig | Mode::RewriteFraig | Mode::Rewrite6Fraig => {
            SimplifyConfig::default()
        }
        Mode::SimplifiedSweep => SimplifyConfig::sweeping(),
        Mode::Incremental => unreachable!("dispatched to run_incremental"),
        Mode::Kinduction => unreachable!("dispatched to run_kinduction"),
    };
    // Only the fraig-and-later modes run the AIG-level passes, so the
    // other rows keep their historical meaning as a trajectory.
    let fraig = if matches!(mode, Mode::Fraig | Mode::RewriteFraig | Mode::Rewrite6Fraig) {
        FraigConfig::default()
    } else {
        FraigConfig::disabled()
    };
    let rewrite = match mode {
        Mode::RewriteFraig => RewriteConfig::default(),
        Mode::Rewrite6Fraig => RewriteConfig::wide(),
        _ => RewriteConfig::disabled(),
    };
    // The naive baseline must be the *seed* encoding: the comparator cache
    // is part of the PR-1 optimizations, so it is switched off together
    // with the sink layer.
    let emm = emm_core::EmmOptions {
        comparator_cache: mode != Mode::Naive,
        ..emm_core::EmmOptions::default()
    };
    // Timed from engine construction so the fraig preprocessing pass is
    // charged to the mode that runs it — the speedup column must reflect
    // end-to-end wall clock.
    let started = Instant::now();
    let mut engine = BmcEngine::new(
        design,
        BmcOptions {
            proofs: true,
            wall_limit: Some(timeout),
            simplify,
            fraig,
            rewrite,
            emm,
            ..BmcOptions::default()
        },
    );
    let run = engine.check(prop, bound).expect("bench run");
    let elapsed = started.elapsed();
    let (vars, solver_stats) = engine.solver_stats();
    let emm = engine.emm_stats();
    RunRecord {
        benchmark: benchmark.to_string(),
        mode: mode.name(),
        verdict: verdict_name(&run.verdict),
        exhaustion: exhaustion_name(&run.verdict),
        depth: run.depth_reached,
        seconds: elapsed.as_secs_f64(),
        vars,
        clauses: solver_stats.original_clauses,
        emm_clauses: emm.clauses,
        cmp_cache_hits: emm.cmp_cache_hits,
        simplify: engine.simplify_stats(),
        fraig: engine.fraig_stats().copied(),
        rewrite: engine.rewrite_stats().copied(),
        incremental: None,
        kinduction: None,
    }
}

/// The `incremental` mode: the sweeping configuration solved
/// bound-to-bound on one long-lived solver per context, then the same
/// configuration again with `incremental: false` (every bound re-encodes
/// and re-solves from scratch). The row's headline counts come from the
/// incremental leg; the extras record the comparison.
fn run_incremental(
    benchmark: &str,
    design: &emm_aig::Design,
    prop: usize,
    bound: usize,
    timeout: Duration,
) -> RunRecord {
    let opts = |incremental: bool| BmcOptions {
        proofs: true,
        // The restart leg is deliberately quadratic; give it headroom so
        // the comparison ends in matching verdicts, not a timeout.
        wall_limit: Some(if incremental { timeout } else { timeout * 5 }),
        simplify: SimplifyConfig::sweeping(),
        fraig: FraigConfig::disabled(),
        rewrite: RewriteConfig::disabled(),
        incremental,
        ..BmcOptions::default()
    };
    let started = Instant::now();
    let mut engine = BmcEngine::new(design, opts(true));
    let run = engine.check(prop, bound).expect("bench run");
    let elapsed = started.elapsed();
    let (vars, solver_stats) = engine.solver_stats();
    let emm = engine.emm_stats();

    let restart_started = Instant::now();
    let mut restart = BmcEngine::new(design, opts(false));
    let restart_run = restart.check(prop, bound).expect("bench run");
    let restart_elapsed = restart_started.elapsed();

    RunRecord {
        benchmark: benchmark.to_string(),
        mode: Mode::Incremental.name(),
        verdict: verdict_name(&run.verdict),
        exhaustion: exhaustion_name(&run.verdict),
        depth: run.depth_reached,
        seconds: elapsed.as_secs_f64(),
        vars,
        clauses: solver_stats.original_clauses,
        emm_clauses: emm.clauses,
        cmp_cache_hits: emm.cmp_cache_hits,
        simplify: engine.simplify_stats(),
        fraig: None,
        rewrite: None,
        incremental: Some(IncrementalExtras {
            retired_clauses: solver_stats.retired_clauses,
            property_clauses_retired: engine.property_clauses_retired(),
            per_bound_seconds: run.per_bound_seconds,
            restart_seconds: restart_elapsed.as_secs_f64(),
            restart_verdict: verdict_name(&restart_run.verdict),
            restart_per_bound_seconds: restart_run.per_bound_seconds,
            inprocess: InprocessCounters::from_stats(&[solver_stats], run.phase_seconds.inprocess),
        }),
        kinduction: None,
    }
}

/// The `kinduction` mode: the [`KInduction`] engine on the sweeping
/// configuration, base case and floating inductive step interleaved up
/// to a fixed depth cap. The headline `vars`/`clauses` come
/// from the base-case solver (comparable to the anchored rows); the
/// step solver's footprint and the per-depth lifecycle counters go into
/// the extras.
fn run_kinduction(
    benchmark: &str,
    design: &emm_aig::Design,
    prop: usize,
    max_k: usize,
    timeout: Duration,
) -> RunRecord {
    let started = Instant::now();
    let mut engine = KInduction::new(
        design,
        VerifyOptions::default()
            .simplify(SimplifyConfig::sweeping())
            .wall_limit(Some(timeout)),
    );
    let run = engine.check(prop, max_k).expect("bench run");
    let elapsed = started.elapsed();
    let (vars, solver_stats) = engine.base().solver_stats();
    let emm = engine.base().emm_stats();
    let (step_vars, step_stats) = engine.step_solver_stats();
    RunRecord {
        benchmark: benchmark.to_string(),
        mode: Mode::Kinduction.name(),
        verdict: verdict_name(&run.verdict),
        exhaustion: exhaustion_name(&run.verdict),
        depth: run.depth_reached,
        seconds: elapsed.as_secs_f64(),
        vars,
        clauses: solver_stats.original_clauses,
        emm_clauses: emm.clauses,
        cmp_cache_hits: emm.cmp_cache_hits,
        simplify: engine.base().simplify_stats(),
        fraig: None,
        rewrite: None,
        incremental: None,
        kinduction: Some(KinductionExtras {
            max_k,
            step_queries: engine.step_queries(),
            step_clauses_retired: engine.step_clauses_retired(),
            steps_failed: engine.steps_failed(),
            step_vars,
            step_clauses: step_stats.original_clauses,
            per_k_seconds: run.per_bound_seconds,
            inprocess: InprocessCounters::from_stats(
                &[solver_stats, step_stats],
                run.phase_seconds.inprocess,
            ),
        }),
    }
}

fn json_record(r: &RunRecord) -> String {
    let mut s = String::new();
    write!(
        s,
        "    {{\"benchmark\": \"{}\", \"mode\": \"{}\", \"verdict\": \"{}\", \
         \"exhaustion\": {}, \
         \"depth\": {}, \"seconds\": {:.3}, \"vars\": {}, \"clauses\": {}, \
         \"emm_clauses\": {}, \"cmp_cache_hits\": {}",
        r.benchmark,
        r.mode,
        r.verdict,
        match &r.exhaustion {
            Some(reason) => format!("\"{reason}\""),
            None => "null".to_string(),
        },
        r.depth,
        r.seconds,
        r.vars,
        r.clauses,
        r.emm_clauses,
        r.cmp_cache_hits,
    )
    .expect("write");
    match &r.simplify {
        None => s.push_str(", \"simplify\": null"),
        Some(st) => {
            write!(
                s,
                ", \"simplify\": {{\"gate_queries\": {}, \"folded\": {}, \
                 \"cache_hits\": {}, \"gates_created\": {}, \"gates_emitted\": {}, \
                 \"gates_elided\": {}, \"sweep_checks\": {}, \"sweep_merges\": {}, \
                 \"sweep_refuted\": {}, \"clauses_dropped\": {}, \
                 \"literals_stripped\": {}, \"clauses_retired\": {}, \
                 \"interrupted\": {}}}",
                st.gate_queries,
                st.folded,
                st.cache_hits,
                st.gates_created,
                st.gates_emitted,
                st.gates_elided(),
                st.sweep_checks,
                st.sweep_merges,
                st.sweep_refuted,
                st.clauses_dropped,
                st.literals_stripped,
                st.clauses_retired,
                st.interrupted,
            )
            .expect("write");
        }
    }
    match &r.fraig {
        None => s.push_str(", \"fraig\": null"),
        Some(st) => {
            write!(
                s,
                ", \"fraig\": {{\"ands_before\": {}, \"ands_after\": {}, \
                 \"merges\": {}, \"const_merges\": {}, \"structural_merges\": {}, \
                 \"sat_checks\": {}, \"refuted\": {}, \"unknown\": {}, \
                 \"cex_patterns\": {}, \"buckets_truncated\": {}, \
                 \"truncated_retried\": {}, \"retry_merges\": {}, \
                 \"interrupted\": {}}}",
                st.ands_before,
                st.ands_after,
                st.merges,
                st.const_merges,
                st.structural_merges,
                st.sat_checks,
                st.refuted,
                st.unknown,
                st.cex_patterns,
                st.buckets_truncated,
                st.truncated_retried,
                st.retry_merges,
                st.interrupted,
            )
            .expect("write");
        }
    }
    match &r.rewrite {
        None => s.push_str(", \"rewrite\": null"),
        Some(st) => {
            write!(
                s,
                ", \"rewrite\": {{\"ands_before\": {}, \"ands_after\": {}, \
                 \"cut_size\": {}, \"iterations\": {}, \"rewrites\": {}, \
                 \"xor_rewrites\": {}, \"mux_rewrites\": {}, \
                 \"cuts_enumerated\": {}, \"candidates_tried\": {}, \
                 \"zero_gain_skipped\": {}, \"candidates_collected\": {}, \
                 \"select_dropped\": {}, \"exchange_swaps\": {}, \
                 \"npn_classes\": {}, \"interrupted\": {}}}",
                st.ands_before,
                st.ands_after,
                st.cut_size,
                st.iterations,
                st.rewrites,
                st.xor_rewrites,
                st.mux_rewrites,
                st.cuts_enumerated,
                st.candidates_tried,
                st.zero_gain_skipped,
                st.candidates_collected,
                st.select_dropped,
                st.exchange_swaps,
                st.npn_classes,
                st.interrupted,
            )
            .expect("write");
        }
    }
    if let Some(extra) = &r.incremental {
        let fmt_bounds = |xs: &[f64]| {
            xs.iter()
                .map(|x| format!("{x:.4}"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        write!(
            s,
            ", \"retired_clauses\": {}, \"property_clauses_retired\": {}, \
             \"restart_seconds\": {:.3}, \"restart_verdict\": \"{}\", \
             \"per_bound_seconds\": [{}], \"restart_per_bound_seconds\": [{}]",
            extra.retired_clauses,
            extra.property_clauses_retired,
            extra.restart_seconds,
            extra.restart_verdict,
            fmt_bounds(&extra.per_bound_seconds),
            fmt_bounds(&extra.restart_per_bound_seconds),
        )
        .expect("write");
        s.push_str(&json_inprocess(&extra.inprocess));
    }
    if let Some(extra) = &r.kinduction {
        write!(
            s,
            ", \"max_k\": {}, \"step_queries\": {}, \
             \"step_clauses_retired\": {}, \"steps_failed\": {}, \
             \"step_vars\": {}, \"step_clauses\": {}, \"per_k_seconds\": [{}]",
            extra.max_k,
            extra.step_queries,
            extra.step_clauses_retired,
            match extra.steps_failed {
                Some(k) => k.to_string(),
                None => "null".to_string(),
            },
            extra.step_vars,
            extra.step_clauses,
            extra
                .per_k_seconds
                .iter()
                .map(|x| format!("{x:.4}"))
                .collect::<Vec<_>>()
                .join(", "),
        )
        .expect("write");
        s.push_str(&json_inprocess(&extra.inprocess));
    }
    s.push('}');
    s
}

/// The shared inprocessing-counter JSON fragment of the two
/// solver-lifecycle rows; `bench_check` requires these keys on fresh
/// `incremental` and `kinduction` output.
fn json_inprocess(c: &InprocessCounters) -> String {
    format!(
        ", \"vivified_literals\": {}, \"subsumed_literals\": {}, \
         \"probed_literals\": {}, \"failed_literals\": {}, \
         \"inprocess_rounds\": {}, \"inprocess_seconds\": {:.3}",
        c.vivified_literals,
        c.subsumed_literals,
        c.probed_literals,
        c.failed_literals,
        c.inprocess_rounds,
        c.inprocess_seconds,
    )
}

/// One `server` section row: [`VerificationServer`] batch throughput at a
/// given pool size. `cores` records the machine the numbers came from —
/// `bench_check` only gates throughput against a baseline measured on the
/// same core count, and only demands multi-worker scaling when the
/// machine can actually run workers in parallel.
struct ServerRow {
    workers: usize,
    jobs: usize,
    cores: usize,
    elapsed_seconds: f64,
    jobs_per_sec: f64,
}

/// Measures [`VerificationServer`] throughput on a fixed batch — the
/// quicksort `n = 3` Table 1/2 properties, two submissions each, all
/// sharing one `Arc`'d design so the pre-reduction is shared — at pool
/// sizes 1, 2, and 4. Responses are bit-identical across worker counts
/// (the parallel differential suite proves it); this measures only how
/// fast the batch drains.
fn run_server_bench(aw: usize, dw: usize, timeout: Duration) -> Vec<ServerRow> {
    let qs = QuickSort::new(QuickSortConfig {
        n: 3,
        addr_width: aw,
        data_width: dw,
        bug: Default::default(),
    });
    let design = Arc::new(qs.design.clone());
    let props = [qs.p1.0 as usize, qs.p2.0 as usize];
    let bound = qs.cycle_bound();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut rows = Vec::new();
    for workers in [1usize, 2, 4] {
        let mut server = VerificationServer::new(workers);
        for _ in 0..2 {
            for &prop in &props {
                server.submit(VerifyRequest {
                    design: Arc::clone(&design),
                    property: prop,
                    budget: VerifyBudget {
                        max_depth: bound,
                        wall_limit: Some(timeout),
                        ..VerifyBudget::default()
                    },
                    options: VerifyOptions::default(),
                });
            }
        }
        let responses = server.run();
        assert!(
            responses.iter().all(|r| r.error.is_none()),
            "server bench job failed"
        );
        let stats = server.stats();
        rows.push(ServerRow {
            workers,
            jobs: stats.jobs,
            cores,
            elapsed_seconds: stats.elapsed_seconds,
            jobs_per_sec: stats.jobs_per_sec,
        });
    }
    rows
}

fn format_inprocess(c: &InprocessCounters) -> String {
    format!(
        "inprocess: {} rounds in {:.3}s — vivified {} / subsumed {} / \
         probed {} lits ({} failed)",
        c.inprocess_rounds,
        c.inprocess_seconds,
        c.vivified_literals,
        c.subsumed_literals,
        c.probed_literals,
        c.failed_literals,
    )
}

fn json_server_row(r: &ServerRow) -> String {
    format!(
        "    {{\"workers\": {}, \"jobs\": {}, \"cores\": {}, \
         \"elapsed_seconds\": {:.3}, \"jobs_per_sec\": {:.3}}}",
        r.workers, r.jobs, r.cores, r.elapsed_seconds, r.jobs_per_sec
    )
}

fn main() {
    let aw: usize = arg_value("--aw").and_then(|v| v.parse().ok()).unwrap_or(6);
    let dw: usize = arg_value("--dw").and_then(|v| v.parse().ok()).unwrap_or(4);
    let max_n: usize = arg_value("--max-n")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let timeout = Duration::from_secs(
        arg_value("--timeout")
            .and_then(|v| v.parse().ok())
            .unwrap_or(120),
    );
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_simplify.json".to_string());

    println!("Simplifying-layer benchmark: quicksort (Table 1 / Table 2 workloads)");
    println!(
        "AW={aw} DW={dw}, n=3..={max_n}, timeout {}s per run",
        timeout.as_secs()
    );
    println!();

    let mut records: Vec<RunRecord> = Vec::new();
    for n in 3..=max_n {
        let qs = QuickSort::new(QuickSortConfig {
            n,
            addr_width: aw,
            data_width: dw,
            bug: Default::default(),
        });
        // Table 1's workload is the P1/P2 induction proof; Table 2 studies
        // P2. Benchmarks are labeled accordingly.
        for (table, label, prop) in [
            ("table1", "p1", qs.p1.0 as usize),
            ("table2", "p2", qs.p2.0 as usize),
        ] {
            let name = format!("{table}_quicksort_{label}_n{n}");
            for mode in Mode::ALL {
                let r = match mode {
                    Mode::Incremental => {
                        run_incremental(&name, &qs.design, prop, qs.cycle_bound(), timeout)
                    }
                    // The k loop is capped well below the cycle bound:
                    // quicksort's loop counter keeps induction from
                    // closing at any depth the suite could afford, so
                    // deeper k only buys wall time, and a fixed cap
                    // keeps the row's counts machine-independent
                    // (deadline trips would not be).
                    Mode::Kinduction => run_kinduction(&name, &qs.design, prop, 20, timeout),
                    _ => run_one(&name, &qs.design, prop, qs.cycle_bound(), timeout, mode),
                };
                println!(
                    "{:>28} {:>16}: {:>10}  {}s  vars={} clauses={}",
                    r.benchmark,
                    r.mode,
                    r.verdict,
                    secs(Duration::from_secs_f64(r.seconds)),
                    r.vars,
                    r.clauses
                );
                if let Some(rs) = &r.rewrite {
                    println!(
                        "{:>28} {:>16}  {}",
                        "",
                        "",
                        emm_aig::report::format_rewrite_stats(rs)
                    );
                }
                if let Some(fs) = &r.fraig {
                    println!(
                        "{:>28} {:>16}  {}",
                        "",
                        "",
                        emm_aig::report::format_fraig_stats(fs)
                    );
                }
                if let Some(extra) = &r.incremental {
                    println!(
                        "{:>28} {:>16}  restart {}s ({}), {:.2}x vs incremental; \
                         {} clauses retired ({} property)",
                        "",
                        "",
                        secs(Duration::from_secs_f64(extra.restart_seconds)),
                        extra.restart_verdict,
                        extra.restart_seconds / r.seconds.max(1e-9),
                        extra.retired_clauses,
                        extra.property_clauses_retired,
                    );
                    println!(
                        "{:>28} {:>16}  {}",
                        "",
                        "",
                        format_inprocess(&extra.inprocess)
                    );
                }
                if let Some(extra) = &r.kinduction {
                    println!(
                        "{:>28} {:>16}  step: {} queries, {} clauses retired, \
                         failed@{:?}, {} vars / {} clauses",
                        "",
                        "",
                        extra.step_queries,
                        extra.step_clauses_retired,
                        extra.steps_failed,
                        extra.step_vars,
                        extra.step_clauses,
                    );
                    println!(
                        "{:>28} {:>16}  {}",
                        "",
                        "",
                        format_inprocess(&extra.inprocess)
                    );
                }
                records.push(r);
            }
        }
    }

    println!();
    println!("VerificationServer throughput (quicksort n=3 batch):");
    let server_rows = run_server_bench(aw, dw, timeout);
    for row in &server_rows {
        println!(
            "{:>28} workers={}: {} jobs in {}s = {:.2} jobs/sec ({} core(s))",
            "server",
            row.workers,
            row.jobs,
            row.elapsed_seconds as u64,
            row.jobs_per_sec,
            row.cores
        );
    }

    // Per-benchmark reductions vs the naive baseline (a benchmark's mode
    // rows are adjacent in `records`).
    let mut summary = String::new();
    println!();
    for group in records.chunks(Mode::ALL.len()) {
        let [naive, rest @ ..] = group else { continue };
        for simp in rest {
            // The kinduction row stops at its own capped k, not the
            // cycle bound — a clause/var ratio against the naive row
            // would compare different depths, so it stays out of the
            // reduction summary (its numbers live in the runs section).
            if simp.mode == Mode::Kinduction.name() {
                continue;
            }
            let clause_red = 100.0 * (1.0 - simp.clauses as f64 / naive.clauses.max(1) as f64);
            let var_red = 100.0 * (1.0 - simp.vars as f64 / naive.vars.max(1) as f64);
            let speedup = naive.seconds / simp.seconds.max(1e-9);
            println!(
                "{:>28} {:>16}: clauses -{clause_red:.1}%  vars -{var_red:.1}%  speedup {speedup:.2}x",
                naive.benchmark, simp.mode
            );
            if !summary.is_empty() {
                summary.push_str(",\n");
            }
            write!(
                summary,
                "    {{\"benchmark\": \"{}\", \"mode\": \"{}\", \
                 \"clause_reduction_pct\": {clause_red:.2}, \
                 \"var_reduction_pct\": {var_red:.2}, \"speedup\": {speedup:.3}}}",
                naive.benchmark, simp.mode
            )
            .expect("write");
        }
    }

    let mut json = String::new();
    json.push_str("{\n  \"suite\": \"simplify\",\n");
    writeln!(
        json,
        "  \"config\": {{\"aw\": {aw}, \"dw\": {dw}, \"max_n\": {max_n}, \
         \"timeout_secs\": {}}},",
        timeout.as_secs()
    )
    .expect("write");
    json.push_str("  \"runs\": [\n");
    json.push_str(
        &records
            .iter()
            .map(json_record)
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    json.push_str("\n  ],\n  \"server\": [\n");
    json.push_str(
        &server_rows
            .iter()
            .map(json_server_row)
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    json.push_str("\n  ],\n  \"summary\": [\n");
    json.push_str(&summary);
    json.push_str("\n  ]\n}\n");
    std::fs::write(&out, json).expect("write BENCH_simplify.json");
    println!("\nwrote {out}");
}
