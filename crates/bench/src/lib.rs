//! # emm-bench — the paper's experiment harness
//!
//! Binaries that regenerate each table / case study of *"Verification of
//! Embedded Memory Systems using Efficient Memory Modeling"* (DATE 2005),
//! plus Criterion micro-benchmarks. See `README.md` at the repository
//! root for how to run and read the `simplify` suite and its CI gate.
//!
//! | Binary | Regenerates |
//! |---|---|
//! | `table1` | Table 1 — quicksort, EMM vs Explicit induction proofs |
//! | `table2` | Table 2 — quicksort P2 with proof-based abstraction |
//! | `industry1` | Industry Design I case study (witnesses + induction) |
//! | `industry2` | Industry Design II case study (invariant workflow) |
//! | `constraints` | Section 4.1 constraint-size law |
//! | `simplify` | simplify/fraig encoding ablation plus the `incremental` solver-lifecycle comparison on the Table 1/2 workloads; writes `BENCH_simplify.json` |
//! | `bench_check` | CI regression gate: diffs a fresh bench JSON against the committed baseline |
//!
//! Run them with `cargo run --release -p emm-bench --bin <name> [-- args]`.

#![warn(missing_docs)]

use std::time::Duration;

/// Formats a duration like the paper's tables (seconds, one decimal).
pub fn secs(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64())
}

/// Formats an outcome cell: time when finished, `>limit` on timeout.
pub fn time_or_timeout(d: Duration, finished: bool, limit: Duration) -> String {
    if finished {
        secs(d)
    } else {
        format!(">{}", limit.as_secs())
    }
}

/// Rough live-heap estimate (resident set, MiB) read from /proc, for the
/// tables' memory columns. Returns `None` off Linux.
pub fn resident_mib() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            let kb: f64 = rest.trim().trim_end_matches(" kB").trim().parse().ok()?;
            return Some(kb / 1024.0);
        }
    }
    None
}

/// Minimal field extraction from the flat one-record-per-line JSON the
/// harness binaries write (`BENCH_simplify.json` and friends). Not a JSON
/// parser — just enough to let the CI `bench_check` gate diff two bench
/// files without external dependencies (the build is offline).
pub mod bench_json {
    /// Extracts the string value of `"key": "..."` from a record line.
    pub fn extract_str<'a>(record: &'a str, key: &str) -> Option<&'a str> {
        let needle = format!("\"{key}\": \"");
        let start = record.find(&needle)? + needle.len();
        let rest = &record[start..];
        let end = rest.find('"')?;
        Some(&rest[..end])
    }

    /// Extracts the numeric value of `"key": N` from a record line
    /// (truncates decimals; first occurrence wins, so query top-level keys
    /// before nested objects appear).
    pub fn extract_u64(record: &str, key: &str) -> Option<u64> {
        let needle = format!("\"{key}\": ");
        let start = record.find(&needle)? + needle.len();
        let digits: String = record[start..]
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect();
        digits.parse().ok()
    }

    /// Extracts the numeric value of `"key": N[.M]` from a record line,
    /// keeping the decimals `extract_u64` truncates (the throughput
    /// fields of the `server` section are fractional).
    pub fn extract_f64(record: &str, key: &str) -> Option<f64> {
        let needle = format!("\"{key}\": ");
        let start = record.find(&needle)? + needle.len();
        let digits: String = record[start..]
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        digits.parse().ok()
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        const RECORD: &str = r#"{"benchmark": "table1_n3", "mode": "fraig", "verdict": "proof@30", "seconds": 1.013, "vars": 64761, "clauses": 213474, "simplify": {"cache_hits": 53}}"#;

        #[test]
        fn extracts_strings_and_numbers() {
            assert_eq!(extract_str(RECORD, "benchmark"), Some("table1_n3"));
            assert_eq!(extract_str(RECORD, "mode"), Some("fraig"));
            assert_eq!(extract_str(RECORD, "verdict"), Some("proof@30"));
            assert_eq!(extract_u64(RECORD, "vars"), Some(64761));
            assert_eq!(extract_u64(RECORD, "clauses"), Some(213474));
            assert_eq!(extract_u64(RECORD, "seconds"), Some(1));
            assert_eq!(extract_str(RECORD, "missing"), None);
            assert_eq!(extract_u64(RECORD, "missing"), None);
        }

        #[test]
        fn extracts_floats() {
            assert_eq!(extract_f64(RECORD, "seconds"), Some(1.013));
            assert_eq!(extract_f64(RECORD, "vars"), Some(64761.0));
            assert_eq!(extract_f64(RECORD, "missing"), None);
        }
    }
}

/// Simple fixed-width table printer for the harness binaries.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells.to_vec());
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {cell:>w$} |"));
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["N", "Prop", "Sec"]);
        t.row(&["3".into(), "P1".into(), "64".into()]);
        t.row(&["4".into(), "P2".into(), "453".into()]);
        let s = t.render();
        assert!(s.contains("| N | Prop | Sec |"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn timeout_formatting() {
        assert_eq!(
            time_or_timeout(Duration::from_secs(5), true, Duration::from_secs(60)),
            "5.0"
        );
        assert_eq!(
            time_or_timeout(Duration::from_secs(61), false, Duration::from_secs(60)),
            ">60"
        );
    }
}
