//! Property tests for the BDD package: operations agree with semantic
//! evaluation, quantification laws hold, and reachability is idempotent.

use emm_bdd::{Bdd, Ref};
use proptest::prelude::*;

/// A random boolean expression over up to `n` variables, as an AST.
#[derive(Clone, Debug)]
enum Expr {
    Var(u32),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
}

fn arb_expr(vars: u32, depth: u32) -> impl Strategy<Value = Expr> {
    let leaf = (0..vars).prop_map(Expr::Var);
    leaf.prop_recursive(depth, 32, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
        ]
    })
}

fn build(bdd: &mut Bdd, e: &Expr) -> Ref {
    match e {
        Expr::Var(v) => bdd.var(*v),
        Expr::Not(a) => {
            let fa = build(bdd, a);
            bdd.not(fa)
        }
        Expr::And(a, b) => {
            let fa = build(bdd, a);
            let fb = build(bdd, b);
            bdd.and(fa, fb)
        }
        Expr::Or(a, b) => {
            let fa = build(bdd, a);
            let fb = build(bdd, b);
            bdd.or(fa, fb)
        }
        Expr::Xor(a, b) => {
            let fa = build(bdd, a);
            let fb = build(bdd, b);
            bdd.xor(fa, fb)
        }
    }
}

fn eval(e: &Expr, assign: u32) -> bool {
    match e {
        Expr::Var(v) => (assign >> v) & 1 == 1,
        Expr::Not(a) => !eval(a, assign),
        Expr::And(a, b) => eval(a, assign) && eval(b, assign),
        Expr::Or(a, b) => eval(a, assign) || eval(b, assign),
        Expr::Xor(a, b) => eval(a, assign) ^ eval(b, assign),
    }
}

const VARS: u32 = 5;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any expression's BDD evaluates like the expression itself.
    #[test]
    fn bdd_matches_semantic_evaluation(e in arb_expr(VARS, 5)) {
        let mut bdd = Bdd::new();
        let f = build(&mut bdd, &e);
        for assign in 0..(1u32 << VARS) {
            prop_assert_eq!(
                bdd.eval(f, &|l| (assign >> l) & 1 == 1),
                eval(&e, assign),
                "assignment {:b}", assign
            );
        }
    }

    /// Canonicity: semantically equal expressions share one node.
    #[test]
    fn bdd_is_canonical(e in arb_expr(VARS, 4)) {
        let mut bdd = Bdd::new();
        let f = build(&mut bdd, &e);
        // Rebuild via double negation and De Morgan-ized AND/OR: must be
        // the identical Ref.
        let nf = bdd.not(f);
        let nnf = bdd.not(nf);
        prop_assert_eq!(f, nnf);
        // f XOR f == FALSE, f XNOR f == TRUE.
        prop_assert_eq!(bdd.xor(f, f), Ref::FALSE);
        prop_assert_eq!(bdd.xnor(f, f), Ref::TRUE);
    }

    /// ∃x.f computed by the engine equals cofactor disjunction, and
    /// rel_prod(f, g) equals exists(and(f, g)).
    #[test]
    fn quantification_laws(a in arb_expr(VARS, 4), b in arb_expr(VARS, 4),
                           qvar in 0..VARS) {
        let mut bdd = Bdd::new();
        let f = build(&mut bdd, &a);
        let g = build(&mut bdd, &b);
        let conj = bdd.and(f, g);
        let expect = bdd.exists(conj, &|l| l == qvar);
        let got = bdd.rel_prod(f, g, &|l| l == qvar);
        prop_assert_eq!(got, expect, "rel_prod == exists∘and");
        // Semantic check of exists.
        for assign in 0..(1u32 << VARS) {
            let hi = assign | (1 << qvar);
            let lo = assign & !(1 << qvar);
            let sem = (eval(&a, hi) && eval(&b, hi)) || (eval(&a, lo) && eval(&b, lo));
            prop_assert_eq!(bdd.eval(expect, &|l| (assign >> l) & 1 == 1), sem);
        }
    }

    /// sat_count agrees with brute-force counting.
    #[test]
    fn sat_count_matches_enumeration(e in arb_expr(VARS, 4)) {
        let mut bdd = Bdd::new();
        let f = build(&mut bdd, &e);
        let expect = (0..(1u32 << VARS)).filter(|&a| eval(&e, a)).count() as f64;
        prop_assert_eq!(bdd.sat_count(f, VARS), expect);
    }

    /// Renaming by a constant shift is reversible.
    #[test]
    fn rename_shift_roundtrip(e in arb_expr(VARS, 4)) {
        let mut bdd = Bdd::new();
        let f = build(&mut bdd, &e);
        let shifted = bdd.rename(f, &|l| l + 3);
        let back = bdd.rename(shifted, &|l| l - 3);
        prop_assert_eq!(back, f);
    }
}
