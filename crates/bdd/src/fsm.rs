//! Symbolic (BDD-based) model checking of sequential designs.
//!
//! The paper's verification platform pairs SAT-based BMC with a BDD-based
//! model checker; this module is that second engine. It performs classic
//! forward reachability over a monolithic transition relation built with
//! early-quantifying relational products.
//!
//! Memories are *not* supported directly — expand them first with
//! [`emm_core::explicit_model`]-style rewriting (which is exactly why the
//! paper reports its BDD engine failing on the large memory designs: the
//! explicit state space is what it has to chew on).
//!
//! Variable order: latch `i`'s current-state variable is level `2i`, its
//! next-state variable `2i + 1` (interleaved, the standard choice), and the
//! free inputs follow after all state variables.

use emm_aig::{Design, InputKind, LatchInit, Node};

use crate::bdd::{Bdd, Ref};

/// Outcome of symbolic reachability.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SymbolicVerdict {
    /// The bad states are unreachable: the property holds.
    Proof {
        /// Number of image steps to the fixpoint.
        steps: usize,
    },
    /// A bad state is reachable at the given depth.
    Reachable {
        /// Image steps from the initial states to the first bad state.
        depth: usize,
    },
    /// The node limit was exceeded before an answer was found.
    NodeLimitExceeded,
}

/// Configuration for the symbolic checker.
#[derive(Clone, Copy, Debug)]
pub struct SymbolicOptions {
    /// Abort when the manager exceeds this many nodes (the paper's "unable
    /// to build the transition relation" failure mode, surfaced cleanly).
    pub node_limit: usize,
}

impl Default for SymbolicOptions {
    fn default() -> Self {
        SymbolicOptions {
            node_limit: 2_000_000,
        }
    }
}

/// A symbolic model checker for one design.
#[derive(Debug)]
pub struct SymbolicChecker<'d> {
    design: &'d Design,
    bdd: Bdd,
    options: SymbolicOptions,
    num_latches: u32,
    /// BDD for each AIG node over current-state and input variables.
    node_funcs: Vec<Ref>,
    /// Monolithic transition relation over (current, next, inputs).
    trans: Ref,
    /// Initial-state predicate.
    init: Ref,
}

impl<'d> SymbolicChecker<'d> {
    /// Builds the transition relation and initial predicate.
    ///
    /// # Errors
    ///
    /// Returns `Err` if the design has memory modules (expand them first)
    /// or the node limit is hit while building.
    pub fn new(design: &'d Design, options: SymbolicOptions) -> Result<Self, String> {
        design.check()?;
        if !design.memories().is_empty() {
            return Err(format!(
                "symbolic checker needs a memory-free design; {} has {} memories \
                 (expand with emm_core::explicit_model first)",
                "design",
                design.memories().len()
            ));
        }
        let mut bdd = Bdd::new();
        let num_latches = design.num_latches() as u32;
        // Input variable levels come after all state variables.
        let input_base = 2 * num_latches;
        // Map free input index -> level.
        let mut input_level = vec![0u32; design.num_inputs()];
        for (pos, &idx) in design.free_inputs().iter().enumerate() {
            input_level[idx as usize] = input_base + pos as u32;
        }
        // Build node functions bottom-up.
        let mut node_funcs: Vec<Ref> = Vec::with_capacity(design.aig.num_nodes());
        for (_, node) in design.aig.iter() {
            let f = match node {
                Node::Const => Ref::FALSE,
                Node::Input(i) => match design.input_kind(i as usize) {
                    InputKind::Free => bdd.var(input_level[i as usize]),
                    InputKind::Latch(l) => bdd.var(2 * l.0),
                    InputKind::ReadData(..) => unreachable!("no memories"),
                },
                Node::And(a, b) => {
                    let fa = lookup(&mut bdd, &node_funcs, a);
                    let fb = lookup(&mut bdd, &node_funcs, b);
                    bdd.and(fa, fb)
                }
            };
            node_funcs.push(f);
            if bdd.num_nodes() > options.node_limit {
                return Err("node limit exceeded while building node functions".into());
            }
        }
        // Transition relation: ∧_i (x'_i ≡ f_i).
        let mut trans = Ref::TRUE;
        for (i, latch) in design.latches().iter().enumerate() {
            let next = lookup(&mut bdd, &node_funcs, latch.next.expect("checked"));
            let xp = bdd.var(2 * i as u32 + 1);
            let bit_rel = bdd.xnor(xp, next);
            trans = bdd.and(trans, bit_rel);
            if bdd.num_nodes() > options.node_limit {
                return Err("node limit exceeded while building the transition relation".into());
            }
        }
        // Constraints restrict the relation (assumed true every cycle).
        for &c in design.constraints() {
            let fc = lookup(&mut bdd, &node_funcs, c);
            trans = bdd.and(trans, fc);
        }
        // Initial predicate.
        let mut init = Ref::TRUE;
        for (i, latch) in design.latches().iter().enumerate() {
            let v = bdd.var(2 * i as u32);
            init = match latch.init {
                LatchInit::Zero => {
                    let nv = bdd.not(v);
                    bdd.and(init, nv)
                }
                LatchInit::One => bdd.and(init, v),
                LatchInit::Free => init,
            };
        }
        Ok(SymbolicChecker {
            design,
            bdd,
            options,
            num_latches,
            node_funcs,
            trans,
            init,
        })
    }

    /// Forward image of a set of states.
    fn image(&mut self, states: Ref) -> Ref {
        let nl = self.num_latches;
        // ∃ current, inputs: states ∧ trans — quantify everything that is
        // not a next-state variable.
        let img_next = self
            .bdd
            .rel_prod(states, self.trans, &move |l| l >= 2 * nl || l % 2 == 0);
        // Rename next -> current (levels 2i+1 -> 2i, order preserving).
        self.bdd.rename(img_next, &|l| l - 1)
    }

    /// Checks property `prop` by forward reachability.
    pub fn check(&mut self, prop: usize) -> SymbolicVerdict {
        let bad_bit = self.design.properties()[prop].bad;
        let mut bad = lookup(&mut self.bdd, &self.node_funcs, bad_bit);
        // Constraints hold at every frame of a valid trace, the one where
        // bad is observed included — same input valuation for both.
        for &c in self.design.constraints() {
            let fc = lookup(&mut self.bdd, &self.node_funcs, c);
            bad = self.bdd.and(bad, fc);
        }
        let nl = self.num_latches;
        // `bad` ranges over current-state and input vars; a state is bad if
        // some input makes the property fire.
        let bad_states = self.bdd.exists(bad, &move |l| l >= 2 * nl);
        let mut reached = self.init;
        let mut frontier = self.init;
        let mut steps = 0usize;
        loop {
            let hit = self.bdd.and(frontier, bad_states);
            if hit != Ref::FALSE {
                return SymbolicVerdict::Reachable { depth: steps };
            }
            let img = self.image(reached);
            let new_reached = self.bdd.or(reached, img);
            if self.bdd.num_nodes() > self.options.node_limit {
                return SymbolicVerdict::NodeLimitExceeded;
            }
            if new_reached == reached {
                return SymbolicVerdict::Proof { steps };
            }
            // Frontier = newly discovered states (approximated by the full
            // image; cheap and correct).
            frontier = img;
            reached = new_reached;
            steps += 1;
        }
    }

    /// Number of reachable states (after a completed `check`, recomputed
    /// from scratch here for reporting).
    pub fn count_reachable(&mut self) -> f64 {
        let mut reached = self.init;
        loop {
            let img = self.image(reached);
            let new_reached = self.bdd.or(reached, img);
            if new_reached == reached {
                break;
            }
            reached = new_reached;
        }
        // Count over state variables only: quantify inputs away (none are
        // present in `reached`), then count with one variable per latch.
        let projected = self.bdd.rename(reached, &|l| l / 2);
        self.bdd.sat_count(projected, self.num_latches)
    }

    /// Nodes currently allocated in the manager.
    pub fn num_nodes(&self) -> usize {
        self.bdd.num_nodes()
    }
}

fn lookup(bdd: &mut Bdd, funcs: &[Ref], bit: emm_aig::Bit) -> Ref {
    let f = funcs[bit.node().index()];
    if bit.is_inverted() {
        bdd.not(f)
    } else {
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emm_aig::{Design, LatchInit};

    fn mod_counter(width: usize, modulo: u64, bad_at: u64) -> Design {
        let mut d = Design::new();
        let count = d.new_latch_word("count", width, LatchInit::Zero);
        let wrap = d.aig.eq_const(&count, modulo - 1);
        let inc = d.aig.inc(&count);
        let zero = d.aig.const_word(0, width);
        let next = d.aig.mux_word(wrap, &zero, &inc);
        d.set_next_word(&count, &next);
        let bad = d.aig.eq_const(&count, bad_at);
        d.add_property("p", bad);
        d.check().expect("valid");
        d
    }

    #[test]
    fn reachable_bad_state_found_at_depth() {
        let d = mod_counter(4, 12, 7);
        let mut mc = SymbolicChecker::new(&d, SymbolicOptions::default()).expect("build");
        assert_eq!(mc.check(0), SymbolicVerdict::Reachable { depth: 7 });
    }

    #[test]
    fn unreachable_bad_state_proved() {
        let d = mod_counter(4, 5, 9);
        let mut mc = SymbolicChecker::new(&d, SymbolicOptions::default()).expect("build");
        match mc.check(0) {
            SymbolicVerdict::Proof { steps } => {
                assert_eq!(steps, 4, "4 growing images cover all 5 states");
            }
            other => panic!("expected proof, got {other:?}"),
        }
        assert_eq!(mc.count_reachable(), 5.0);
    }

    #[test]
    fn inputs_are_handled() {
        // A latch that follows an input; bad when latch is 1 — reachable
        // in one step by choosing the input.
        let mut d = Design::new();
        let (_, l) = d.new_latch("l", LatchInit::Zero);
        let i = d.new_input("i");
        d.set_next(l, i);
        d.add_property("p", l);
        d.check().expect("valid");
        let mut mc = SymbolicChecker::new(&d, SymbolicOptions::default()).expect("build");
        assert_eq!(mc.check(0), SymbolicVerdict::Reachable { depth: 1 });
    }

    #[test]
    fn constraints_restrict_behavior() {
        // Same design, but the input is constrained to 0: unreachable.
        let mut d = Design::new();
        let (_, l) = d.new_latch("l", LatchInit::Zero);
        let i = d.new_input("i");
        d.set_next(l, i);
        d.add_constraint(!i);
        d.add_property("p", l);
        d.check().expect("valid");
        let mut mc = SymbolicChecker::new(&d, SymbolicOptions::default()).expect("build");
        assert!(matches!(mc.check(0), SymbolicVerdict::Proof { .. }));
    }

    #[test]
    fn memories_are_rejected() {
        let mut d = Design::new();
        let mem = d.add_memory("m", 2, 2, emm_aig::MemInit::Zero);
        let addr = d.new_input_word("a", 2);
        let rd = d.add_read_port(mem, addr, emm_aig::Aig::TRUE);
        let bad = d.aig.redor(&rd);
        d.add_property("p", bad);
        d.check().expect("valid");
        assert!(SymbolicChecker::new(&d, SymbolicOptions::default()).is_err());
    }

    #[test]
    fn node_limit_reported() {
        // A multiplier-like structure blows up under a tiny node limit.
        let mut d = Design::new();
        let a = d.new_latch_word("a", 8, LatchInit::Free);
        let na = d.aig.inc(&a);
        d.set_next_word(&a, &na);
        let b = d.new_latch_word("b", 8, LatchInit::Free);
        let nb = d.aig.inc(&b);
        d.set_next_word(&b, &nb);
        // xor ladder mixing a and b to make the relation non-trivial.
        let mixed = d.aig.word_xor(&a.clone(), &b.clone());
        let sum = d.aig.add(&mixed, &a);
        let bad = d.aig.eq_const(&sum, 0xFF);
        d.add_property("p", bad);
        d.check().expect("valid");
        let result = SymbolicChecker::new(&d, SymbolicOptions { node_limit: 200 });
        assert!(result.is_err(), "tiny node limit must trip during build");
    }

    /// Cross-check: symbolic reachability agrees with explicit-state
    /// enumeration on small random FSMs.
    #[test]
    fn agrees_with_explicit_search_on_random_fsms() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xB00);
        for round in 0..25 {
            // 3 latches, random 2-level next-state logic, no inputs.
            let mut d = Design::new();
            let state = d.new_latch_word("s", 3, LatchInit::Zero);
            let mut nexts = Vec::new();
            for _ in 0..3 {
                let i1 = state.bit(rng.random_range(0..3));
                let i2 = state.bit(rng.random_range(0..3));
                let i3 = state.bit(rng.random_range(0..3));
                let inv1 = if rng.random_bool(0.5) { i1 } else { !i1 };
                let inv2 = if rng.random_bool(0.5) { i2 } else { !i2 };
                let inv3 = if rng.random_bool(0.5) { i3 } else { !i3 };
                let inner = d.aig.and(inv1, inv2);
                let n = d.aig.or(inner, inv3);
                nexts.push(n);
            }
            let next_word = emm_aig::Word::from(nexts);
            d.set_next_word(&state, &next_word);
            let bad_value = rng.random_range(0..8u64);
            let bad = d.aig.eq_const(&state, bad_value);
            d.add_property("p", bad);
            d.check().expect("valid");

            // Explicit enumeration of the 8-state graph.
            let mut seen = [false; 8];
            let mut frontier = vec![0u64];
            seen[0] = true;
            let mut reach_depth: Option<usize> = None;
            let mut depth = 0;
            if bad_value == 0 {
                reach_depth = Some(0);
            }
            while reach_depth.is_none() && !frontier.is_empty() {
                depth += 1;
                let mut next_frontier = Vec::new();
                for &s in &frontier {
                    // Evaluate next state via the simulator.
                    let mut sim = emm_aig::Simulator::new(&d);
                    for b in 0..3 {
                        sim.set_latch(b, (s >> b) & 1 == 1);
                    }
                    sim.step(&[]);
                    let t: u64 = (0..3).map(|b| (sim.latch(b) as u64) << b).sum();
                    if !seen[t as usize] {
                        seen[t as usize] = true;
                        if t == bad_value {
                            reach_depth = Some(depth);
                        }
                        next_frontier.push(t);
                    }
                }
                frontier = next_frontier;
            }

            let mut mc = SymbolicChecker::new(&d, SymbolicOptions::default()).expect("build");
            match (mc.check(0), reach_depth) {
                (SymbolicVerdict::Reachable { depth }, Some(expect)) => {
                    assert_eq!(depth, expect, "round {round}");
                }
                (SymbolicVerdict::Proof { .. }, None) => {}
                (got, expect) => panic!("round {round}: {got:?} vs explicit {expect:?}"),
            }
        }
    }
}
