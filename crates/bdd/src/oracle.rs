//! Exhaustive-reachability oracle over designs *with* memories.
//!
//! The differential suites in `emm-bmc` cross-check SAT-side verdicts
//! (bounded BMC, k-induction) against BDD-based forward reachability.
//! [`SymbolicChecker`](crate::SymbolicChecker) only accepts memory-free
//! designs; [`check_invariant`] closes the gap by expanding every memory
//! into its explicit latch bank ([`emm_core::explicit_model`] — the
//! paper's *Explicit Modeling* baseline) before checking, so any small
//! design (aw ≤ 3 keeps the blow-up tractable) gets an exact answer:
//! the invariant holds in all reachable states, or a bad state is
//! reachable at a known depth.
//!
//! ```
//! use emm_aig::{Design, MemInit};
//! use emm_bdd::{check_invariant, OracleVerdict, SymbolicOptions};
//!
//! let mut d = Design::new();
//! let mem = d.add_memory("m", 2, 2, MemInit::Zero);
//! let addr = d.new_input_word("addr", 2);
//! let rd = d.add_read_port(mem, addr, emm_aig::Aig::TRUE);
//! let bad = d.aig.eq_const(&rd, 3); // never written: memory stays 0
//! d.add_property("p", bad);
//! d.check().map_err(std::io::Error::other)?;
//!
//! let verdict = check_invariant(&d, 0, SymbolicOptions::default())
//!     .map_err(std::io::Error::other)?;
//! assert!(matches!(verdict, OracleVerdict::Holds { .. }));
//! # Ok::<(), std::io::Error>(())
//! ```

use emm_aig::Design;
use emm_core::explicit_model;

use crate::fsm::{SymbolicChecker, SymbolicOptions, SymbolicVerdict};

/// The oracle's answer for one property.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OracleVerdict {
    /// The invariant holds in every reachable state.
    Holds {
        /// Image steps to the reachability fixpoint.
        steps: usize,
    },
    /// A bad state is reachable.
    Violated {
        /// Image steps from the initial states to the first bad state.
        depth: usize,
    },
    /// The BDD node limit was exceeded — no answer.
    Inconclusive,
}

impl OracleVerdict {
    /// `true` for [`OracleVerdict::Holds`].
    pub fn holds(&self) -> bool {
        matches!(self, OracleVerdict::Holds { .. })
    }
}

/// Decides property `prop` of `design` by exhaustive BDD reachability,
/// expanding memories into explicit latch banks first when present.
///
/// The expansion multiplies the latch count by `2^addr_width ×
/// data_width` per memory, so this is an oracle for *small* designs —
/// exactly the role the paper assigns its BDD engine.
///
/// # Errors
///
/// Returns `Err` when the design is malformed or the node limit is hit
/// while building the transition relation (checking itself reports
/// [`OracleVerdict::Inconclusive`] instead).
pub fn check_invariant(
    design: &Design,
    prop: usize,
    options: SymbolicOptions,
) -> Result<OracleVerdict, String> {
    let verdict = if design.memories().is_empty() {
        SymbolicChecker::new(design, options)?.check(prop)
    } else {
        let (expanded, _map) = explicit_model(design);
        SymbolicChecker::new(&expanded, options)?.check(prop)
    };
    Ok(match verdict {
        SymbolicVerdict::Proof { steps } => OracleVerdict::Holds { steps },
        SymbolicVerdict::Reachable { depth } => OracleVerdict::Violated { depth },
        SymbolicVerdict::NodeLimitExceeded => OracleVerdict::Inconclusive,
    })
}
