//! A reduced ordered binary decision diagram (ROBDD) package.
//!
//! Hash-consed nodes, an ITE-based operation core with memoization,
//! existential quantification, relational products with early quantification
//! over the conjunction, and variable renaming — the operations a symbolic
//! model checker needs.
//!
//! Variables are identified by their *level*: smaller levels are closer to
//! the root. The ordering is fixed at manager creation time by however the
//! caller assigns levels.

use std::collections::HashMap;

/// A BDD node reference.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Ref(u32);

impl Ref {
    /// The constant false.
    pub const FALSE: Ref = Ref(0);
    /// The constant true.
    pub const TRUE: Ref = Ref(1);

    /// Is this a terminal node?
    #[inline]
    pub fn is_const(self) -> bool {
        self.0 < 2
    }
}

const TERMINAL_LEVEL: u32 = u32::MAX;

#[derive(Clone, Copy, Debug)]
struct Node {
    level: u32,
    lo: Ref,
    hi: Ref,
}

/// The BDD manager: owns the node table and operation caches.
#[derive(Debug, Default)]
pub struct Bdd {
    nodes: Vec<Node>,
    unique: HashMap<(u32, Ref, Ref), Ref>,
    ite_cache: HashMap<(Ref, Ref, Ref), Ref>,
    exists_cache: HashMap<(Ref, u64), Ref>,
    relprod_cache: HashMap<(Ref, Ref, u64), Ref>,
    rename_cache: HashMap<(Ref, u64), Ref>,
    /// Cache generation counters keyed into the u64 cache tags.
    exists_gen: u64,
    rename_gen: u64,
}

impl Bdd {
    /// Creates an empty manager.
    pub fn new() -> Bdd {
        Bdd {
            nodes: vec![
                Node {
                    level: TERMINAL_LEVEL,
                    lo: Ref::FALSE,
                    hi: Ref::FALSE,
                },
                Node {
                    level: TERMINAL_LEVEL,
                    lo: Ref::TRUE,
                    hi: Ref::TRUE,
                },
            ],
            ..Bdd::default()
        }
    }

    /// Number of live nodes (terminals included).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The variable at `level` as a BDD.
    pub fn var(&mut self, level: u32) -> Ref {
        self.mk(level, Ref::FALSE, Ref::TRUE)
    }

    /// The negated variable at `level`.
    pub fn nvar(&mut self, level: u32) -> Ref {
        self.mk(level, Ref::TRUE, Ref::FALSE)
    }

    /// Level of the root variable (`None` for terminals).
    pub fn level(&self, f: Ref) -> Option<u32> {
        (!f.is_const()).then(|| self.nodes[f.0 as usize].level)
    }

    fn mk(&mut self, level: u32, lo: Ref, hi: Ref) -> Ref {
        if lo == hi {
            return lo;
        }
        if let Some(&r) = self.unique.get(&(level, lo, hi)) {
            return r;
        }
        let r = Ref(self.nodes.len() as u32);
        self.nodes.push(Node { level, lo, hi });
        self.unique.insert((level, lo, hi), r);
        r
    }

    #[inline]
    fn node(&self, f: Ref) -> Node {
        self.nodes[f.0 as usize]
    }

    /// If-then-else: `ite(f, g, h) = (f ∧ g) ∨ (¬f ∧ h)` — the universal
    /// connective all binary operations reduce to.
    pub fn ite(&mut self, f: Ref, g: Ref, h: Ref) -> Ref {
        // Terminal cases.
        if f == Ref::TRUE {
            return g;
        }
        if f == Ref::FALSE {
            return h;
        }
        if g == h {
            return g;
        }
        if g == Ref::TRUE && h == Ref::FALSE {
            return f;
        }
        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            return r;
        }
        let top = [f, g, h]
            .iter()
            .filter_map(|&x| self.level(x))
            .min()
            .expect("at least one non-terminal");
        let (f0, f1) = self.cofactors(f, top);
        let (g0, g1) = self.cofactors(g, top);
        let (h0, h1) = self.cofactors(h, top);
        let lo = self.ite(f0, g0, h0);
        let hi = self.ite(f1, g1, h1);
        let r = self.mk(top, lo, hi);
        self.ite_cache.insert((f, g, h), r);
        r
    }

    #[inline]
    fn cofactors(&self, f: Ref, level: u32) -> (Ref, Ref) {
        if f.is_const() {
            return (f, f);
        }
        let n = self.node(f);
        if n.level == level {
            (n.lo, n.hi)
        } else {
            (f, f)
        }
    }

    /// Conjunction.
    pub fn and(&mut self, f: Ref, g: Ref) -> Ref {
        self.ite(f, g, Ref::FALSE)
    }

    /// Disjunction.
    pub fn or(&mut self, f: Ref, g: Ref) -> Ref {
        self.ite(f, Ref::TRUE, g)
    }

    /// Negation.
    pub fn not(&mut self, f: Ref) -> Ref {
        self.ite(f, Ref::FALSE, Ref::TRUE)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: Ref, g: Ref) -> Ref {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// Equivalence.
    pub fn xnor(&mut self, f: Ref, g: Ref) -> Ref {
        let ng = self.not(g);
        self.ite(f, g, ng)
    }

    /// Existential quantification of every level for which `quantified`
    /// returns true. `generation` tags the cache; bump it when the
    /// predicate changes.
    pub fn exists(&mut self, f: Ref, quantified: &dyn Fn(u32) -> bool) -> Ref {
        self.exists_gen += 1;
        let gen = self.exists_gen;
        self.exists_rec(f, quantified, gen)
    }

    fn exists_rec(&mut self, f: Ref, q: &dyn Fn(u32) -> bool, gen: u64) -> Ref {
        if f.is_const() {
            return f;
        }
        if let Some(&r) = self.exists_cache.get(&(f, gen)) {
            return r;
        }
        let n = self.node(f);
        let lo = self.exists_rec(n.lo, q, gen);
        let hi = self.exists_rec(n.hi, q, gen);
        let r = if q(n.level) {
            self.or(lo, hi)
        } else {
            self.mk(n.level, lo, hi)
        };
        self.exists_cache.insert((f, gen), r);
        r
    }

    /// Relational product `∃q. f ∧ g` with quantification interleaved into
    /// the conjunction — the workhorse of image computation.
    pub fn rel_prod(&mut self, f: Ref, g: Ref, quantified: &dyn Fn(u32) -> bool) -> Ref {
        self.exists_gen += 1;
        let gen = self.exists_gen;
        self.rel_prod_rec(f, g, quantified, gen)
    }

    fn rel_prod_rec(&mut self, f: Ref, g: Ref, q: &dyn Fn(u32) -> bool, gen: u64) -> Ref {
        if f == Ref::FALSE || g == Ref::FALSE {
            return Ref::FALSE;
        }
        if f == Ref::TRUE && g == Ref::TRUE {
            return Ref::TRUE;
        }
        let key = (f.min(g), f.max(g), gen);
        if let Some(&r) = self.relprod_cache.get(&key) {
            return r;
        }
        let top = [f, g]
            .iter()
            .filter_map(|&x| self.level(x))
            .min()
            .expect("non-terminal present");
        let (f0, f1) = self.cofactors(f, top);
        let (g0, g1) = self.cofactors(g, top);
        let lo = self.rel_prod_rec(f0, g0, q, gen);
        let r = if q(top) {
            if lo == Ref::TRUE {
                Ref::TRUE
            } else {
                let hi = self.rel_prod_rec(f1, g1, q, gen);
                self.or(lo, hi)
            }
        } else {
            let hi = self.rel_prod_rec(f1, g1, q, gen);
            self.mk(top, lo, hi)
        };
        self.relprod_cache.insert(key, r);
        r
    }

    /// Renames variables: every level `l` becomes `map(l)`.
    ///
    /// The mapping must be monotone on the levels occurring in `f`
    /// (order-preserving), which holds for the interleaved current/next
    /// variable scheme the model checker uses.
    pub fn rename(&mut self, f: Ref, map: &dyn Fn(u32) -> u32) -> Ref {
        self.rename_gen += 1;
        let gen = self.rename_gen;
        self.rename_rec(f, map, gen)
    }

    fn rename_rec(&mut self, f: Ref, map: &dyn Fn(u32) -> u32, gen: u64) -> Ref {
        if f.is_const() {
            return f;
        }
        if let Some(&r) = self.rename_cache.get(&(f, gen)) {
            return r;
        }
        let n = self.node(f);
        let lo = self.rename_rec(n.lo, map, gen);
        let hi = self.rename_rec(n.hi, map, gen);
        let r = self.ite_on_var(map(n.level), lo, hi);
        self.rename_cache.insert((f, gen), r);
        r
    }

    /// `ite(var(level), hi, lo)` built safely even if children's levels are
    /// not below `level` (used by rename).
    fn ite_on_var(&mut self, level: u32, lo: Ref, hi: Ref) -> Ref {
        let v = self.var(level);
        self.ite(v, hi, lo)
    }

    /// Evaluates `f` under a total assignment (`assignment(level)`).
    pub fn eval(&self, f: Ref, assignment: &dyn Fn(u32) -> bool) -> bool {
        let mut cur = f;
        loop {
            if cur == Ref::TRUE {
                return true;
            }
            if cur == Ref::FALSE {
                return false;
            }
            let n = self.node(cur);
            cur = if assignment(n.level) { n.hi } else { n.lo };
        }
    }

    /// Number of satisfying assignments over `num_vars` variables
    /// (levels `0..num_vars`).
    ///
    /// # Panics
    ///
    /// Panics if `f` mentions a level `>= num_vars`.
    pub fn sat_count(&self, f: Ref, num_vars: u32) -> f64 {
        let mut memo: HashMap<Ref, f64> = HashMap::new();
        // Counts are computed relative to the variables strictly below the
        // node's level; scale by the variables above the root.
        let root_level = self.level(f).unwrap_or(num_vars);
        assert!(
            root_level <= num_vars,
            "level outside the declared variable range"
        );
        let below = self.sat_count_rec(f, num_vars, &mut memo);
        below * 2f64.powi(root_level as i32)
    }

    /// Satisfying assignments of `f` over the variables `level(f)..num_vars`.
    fn sat_count_rec(&self, f: Ref, num_vars: u32, memo: &mut HashMap<Ref, f64>) -> f64 {
        if f == Ref::FALSE {
            return 0.0;
        }
        if f == Ref::TRUE {
            return 1.0;
        }
        if let Some(&c) = memo.get(&f) {
            return c;
        }
        let n = self.node(f);
        assert!(
            n.level < num_vars,
            "level outside the declared variable range"
        );
        let child_count = |bdd: &Bdd, child: Ref, memo: &mut HashMap<Ref, f64>| -> f64 {
            let child_level = bdd.level(child).unwrap_or(num_vars);
            let gap = child_level - n.level - 1;
            bdd.sat_count_rec(child, num_vars, memo) * 2f64.powi(gap as i32)
        };
        let lo = child_count(self, n.lo, memo);
        let hi = child_count(self, n.hi, memo);
        let c = lo + hi;
        memo.insert(f, c);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Evaluates a function described by a truth table over `n` vars.
    fn build_from_table(bdd: &mut Bdd, n: u32, table: &[bool]) -> Ref {
        assert_eq!(table.len(), 1 << n);
        let mut f = Ref::FALSE;
        for (row, &value) in table.iter().enumerate() {
            if !value {
                continue;
            }
            let mut cube = Ref::TRUE;
            for v in 0..n {
                let lit = if (row >> v) & 1 == 1 {
                    bdd.var(v)
                } else {
                    bdd.nvar(v)
                };
                cube = bdd.and(cube, lit);
            }
            f = bdd.or(f, cube);
        }
        f
    }

    fn check_table(bdd: &Bdd, f: Ref, _n: u32, table: &[bool]) {
        for (row, &value) in table.iter().enumerate() {
            let got = bdd.eval(f, &|l| (row >> l) & 1 == 1);
            assert_eq!(got, value, "row {row:b}");
        }
    }

    #[test]
    fn basic_operations() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(1);
        let and = b.and(x, y);
        let or = b.or(x, y);
        let xor = b.xor(x, y);
        for (vx, vy) in [(false, false), (false, true), (true, false), (true, true)] {
            let assign = |l: u32| if l == 0 { vx } else { vy };
            assert_eq!(b.eval(and, &assign), vx && vy);
            assert_eq!(b.eval(or, &assign), vx || vy);
            assert_eq!(b.eval(xor, &assign), vx ^ vy);
        }
    }

    #[test]
    fn canonical_forms() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(1);
        // x & y == y & x, double negation cancels.
        let a1 = b.and(x, y);
        let a2 = b.and(y, x);
        assert_eq!(a1, a2);
        let n = b.not(a1);
        let nn = b.not(n);
        assert_eq!(nn, a1);
        // x | !x == true
        let nx = b.not(x);
        assert_eq!(b.or(x, nx), Ref::TRUE);
    }

    #[test]
    fn exists_quantifies() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(1);
        let f = b.and(x, y);
        // ∃x. x∧y == y
        let e = b.exists(f, &|l| l == 0);
        assert_eq!(e, y);
        // ∃x,y. x∧y == true
        let e2 = b.exists(f, &|_| true);
        assert_eq!(e2, Ref::TRUE);
    }

    #[test]
    fn rel_prod_equals_exists_of_and() {
        let mut b = Bdd::new();
        // f = x0 ≡ x2, g = x1 ∨ x2. Quantify x2.
        let x0 = b.var(0);
        let x1 = b.var(1);
        let x2 = b.var(2);
        let f = b.xnor(x0, x2);
        let g = b.or(x1, x2);
        let conj = b.and(f, g);
        let expect = b.exists(conj, &|l| l == 2);
        let got = b.rel_prod(f, g, &|l| l == 2);
        assert_eq!(got, expect);
    }

    #[test]
    fn rename_shifts_levels() {
        let mut b = Bdd::new();
        let x0 = b.var(0);
        let x2 = b.var(2);
        let f = b.and(x0, x2);
        // Map 0->1, 2->3.
        let g = b.rename(f, &|l| l + 1);
        let x1 = b.var(1);
        let x3 = b.var(3);
        let expect = b.and(x1, x3);
        assert_eq!(g, expect);
    }

    #[test]
    fn random_tables_roundtrip() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let n = rng.random_range(1..=4u32);
            let table: Vec<bool> = (0..(1usize << n)).map(|_| rng.random_bool(0.5)).collect();
            let mut b = Bdd::new();
            let f = build_from_table(&mut b, n, &table);
            check_table(&b, f, n, &table);
            // Negation inverts the table.
            let nf = b.not(f);
            let ntable: Vec<bool> = table.iter().map(|&v| !v).collect();
            check_table(&b, nf, n, &ntable);
        }
    }

    #[test]
    fn random_binary_ops_match_tables() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..30 {
            let n = rng.random_range(1..=4u32);
            let ta: Vec<bool> = (0..(1usize << n)).map(|_| rng.random_bool(0.5)).collect();
            let tb: Vec<bool> = (0..(1usize << n)).map(|_| rng.random_bool(0.5)).collect();
            let mut b = Bdd::new();
            let fa = build_from_table(&mut b, n, &ta);
            let fb = build_from_table(&mut b, n, &tb);
            let and = b.and(fa, fb);
            let or = b.or(fa, fb);
            let xor = b.xor(fa, fb);
            for row in 0..(1usize << n) {
                let assign = |l: u32| (row >> l) & 1 == 1;
                assert_eq!(b.eval(and, &assign), ta[row] && tb[row]);
                assert_eq!(b.eval(or, &assign), ta[row] || tb[row]);
                assert_eq!(b.eval(xor, &assign), ta[row] ^ tb[row]);
            }
        }
    }

    #[test]
    fn sat_count_simple() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(1);
        let f = b.or(x, y);
        assert_eq!(b.sat_count(f, 2), 3.0);
        let g = b.and(x, y);
        assert_eq!(b.sat_count(g, 2), 1.0);
        assert_eq!(b.sat_count(Ref::TRUE, 3), 8.0);
        assert_eq!(b.sat_count(Ref::FALSE, 3), 0.0);
    }
}
