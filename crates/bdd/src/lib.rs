//! # emm-bdd — BDD package and symbolic model checker
//!
//! The second engine of the verification platform reproduced from
//! *"Verification of Embedded Memory Systems using Efficient Memory
//! Modeling"* (Ganai, Gupta, Ashar — DATE 2005). The paper's prototype
//! includes "standard verification techniques for SAT-based BMC **and
//! BDD-based model checking**"; this crate is the latter.
//!
//! * [`Bdd`] — a hash-consed ROBDD manager: `ite`, quantification,
//!   relational products, renaming, model counting;
//! * [`SymbolicChecker`] — forward-reachability model checking of
//!   memory-free [`emm_aig::Design`]s (expand memories first with
//!   `emm_core::explicit_model`; the blow-up that entails is precisely what
//!   the paper observes when its BDD engine fails on the industry designs);
//! * [`check_invariant`] — the differential-oracle entry point: expands
//!   memories automatically and decides an invariant exhaustively, for
//!   cross-checking the SAT engines on small designs.
//!
//! ## Example
//!
//! ```
//! use emm_aig::{Design, LatchInit};
//! use emm_bdd::{SymbolicChecker, SymbolicOptions, SymbolicVerdict};
//!
//! let mut d = Design::new();
//! let c = d.new_latch_word("c", 3, LatchInit::Zero);
//! let wrap = d.aig.eq_const(&c, 4);
//! let inc = d.aig.inc(&c);
//! let zero = d.aig.const_word(0, 3);
//! let next = d.aig.mux_word(wrap, &zero, &inc);
//! d.set_next_word(&c, &next);
//! let bad = d.aig.eq_const(&c, 6);
//! d.add_property("lt6", bad);
//! d.check().map_err(std::io::Error::other)?;
//!
//! let mut mc = SymbolicChecker::new(&d, SymbolicOptions::default())
//!     .map_err(std::io::Error::other)?;
//! assert!(matches!(mc.check(0), SymbolicVerdict::Proof { .. }));
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]

mod bdd;
mod fsm;
mod oracle;

pub use bdd::{Bdd, Ref};
pub use fsm::{SymbolicChecker, SymbolicOptions, SymbolicVerdict};
pub use oracle::{check_invariant, OracleVerdict};
