//! # emm-sat — the SAT backend of the EMM verification stack
//!
//! A conflict-driven clause-learning (CDCL) SAT solver built as the backend
//! for SAT-based Bounded Model Checking with Efficient Memory Modeling
//! (Ganai, Gupta, Ashar — DATE 2005). It stands in for the paper's hybrid
//! circuit/CNF solver (their ref. \[21\]) and resolution-based refutation
//! extractor (their ref. \[20\]).
//!
//! ## Features
//!
//! * Incremental solving: add clauses between [`Solver::solve`] calls — the
//!   pattern BMC uses when unrolling one frame at a time.
//! * Solving under **assumptions** ([`Solver::solve_with_assumptions`])
//!   with [`Solver::failed_assumptions`], enabling selector-based *group
//!   unsat cores* (how proof-based abstraction computes latch reasons).
//! * **Clause retirement**: [`Solver::retire_clause`] physically deletes a
//!   redundant original clause (watchers detached, arena compacted by GC),
//!   and **activation groups** ([`Solver::new_activation_group`],
//!   [`Solver::add_clause_in_group`], [`Solver::retire_group`]) scope
//!   clauses to a guard literal so whole groups — e.g. a BMC bound's
//!   property clause — can be enforced per solve and later removed for
//!   good.
//! * **Refutation tracing** ([`SolverConfig::proof_tracing`]): on UNSAT,
//!   [`Solver::core_clause_ids`] returns the original clauses used in the
//!   refutation (`SAT_Get_Refutation` in the paper's Fig. 1/Fig. 3).
//! * Deterministic **budgets** ([`Budget`]) for the paper's timeout-based
//!   experimental methodology, and a pipeline-wide **resource governor**
//!   ([`ResourceGovernor`], module [`govern`]): shared deadline,
//!   conflict/propagation caps, a memory ceiling over arena + watcher
//!   bytes, and a cooperative cancellation token polled by every
//!   long-running loop in the stack.
//! * A **simplifying CNF sink** ([`SimplifySink`], module [`simplify`]):
//!   cross-frame structural hashing, simulation-guided SAT sweeping, and
//!   lazy gate emission between the BMC encoders and the solver.
//! * An incremental **cone-to-CNF equivalence oracle** ([`EquivOracle`]):
//!   the solver-side half of AIG-level fraiging (`emm-aig`'s `fraig`
//!   module) — callers encode just the cones a candidate equivalence
//!   mentions and get proved/refuted/unknown answers with distinguishing
//!   models.
//!
//! Where this crate sits in the encoding pipeline (design → reduction
//! passes → unrolling → sink → solver) is described in
//! `docs/ARCHITECTURE.md` at the repository root.
//!
//! ## Example
//!
//! ```
//! use emm_sat::{Solver, SolveResult};
//!
//! let mut solver = Solver::new();
//! let a = solver.new_var().positive();
//! let b = solver.new_var().positive();
//! solver.add_clause(&[a, b]);
//! solver.add_clause(&[!a, b]);
//! assert_eq!(solver.solve(), SolveResult::Sat);
//! assert_eq!(solver.model_value(b), Some(true));
//! ```

#![warn(missing_docs)]

mod clause;
pub mod dimacs;
mod equiv;
pub mod govern;
mod heap;
mod inprocess;
mod lit;
pub mod naive;
pub mod simplify;
mod sink;
mod solver;

pub use clause::ClauseId;
pub use equiv::EquivOracle;
pub use govern::{ExhaustionReason, FaultSite, ResourceGovernor};
pub use inprocess::InprocessConfig;
pub use lit::{LBool, Lit, Var};
pub use simplify::{Simplifier, SimplifyConfig, SimplifySink, SimplifyStats};
pub use sink::{CnfSink, CountingSink, VecSink};
pub use solver::{Budget, RestartPolicy, SolveResult, Solver, SolverConfig, SolverStats};
