//! Boolean variables, literals, and three-valued assignments.

use std::fmt;
use std::ops::Not;

/// A Boolean variable, numbered densely from zero.
///
/// Variables are created by [`Solver::new_var`](crate::Solver::new_var) (or
/// any other [`CnfSink`](crate::CnfSink)) and are only meaningful for the
/// solver instance that created them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(u32);

impl Var {
    /// Creates a variable from its dense index.
    #[inline]
    pub fn from_index(index: usize) -> Var {
        debug_assert!(index < (u32::MAX / 2) as usize, "variable index overflow");
        Var(index as u32)
    }

    /// Returns the dense index of this variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the positive literal of this variable.
    #[inline]
    pub fn positive(self) -> Lit {
        Lit::new(self, true)
    }

    /// Returns the negative literal of this variable.
    #[inline]
    pub fn negative(self) -> Lit {
        Lit::new(self, false)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable or its negation.
///
/// Encoded as `2 * var + sign` where `sign == 1` means negated, so a literal
/// fits in a `u32` and indexes arrays (e.g. watch lists) directly.
///
/// ```
/// use emm_sat::{Lit, Var};
/// let v = Var::from_index(3);
/// let p = v.positive();
/// assert_eq!(!p, v.negative());
/// assert_eq!((!p).var(), v);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// Creates a literal over `var`; `positive == false` yields the negation.
    #[inline]
    pub fn new(var: Var, positive: bool) -> Lit {
        Lit(var.0 << 1 | (!positive) as u32)
    }

    /// Reconstructs a literal from its dense code (see [`Lit::code`]).
    #[inline]
    pub fn from_code(code: usize) -> Lit {
        Lit(code as u32)
    }

    /// Returns the dense code of this literal, suitable for array indexing.
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Returns the underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Returns `true` if this is a positive (non-negated) literal.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Returns `true` if this is a negated literal.
    #[inline]
    pub fn is_negative(self) -> bool {
        self.0 & 1 == 1
    }
}

impl Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "!x{}", self.0 >> 1)
        } else {
            write!(f, "x{}", self.0 >> 1)
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A three-valued Boolean: true, false, or unassigned.
///
/// The encoding (`0 = true`, `1 = false`, `>=2 = undefined`) lets literal
/// evaluation be computed from a variable assignment with a single XOR of the
/// literal's sign bit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LBool(u8);

impl LBool {
    /// The true value.
    pub const TRUE: LBool = LBool(0);
    /// The false value.
    pub const FALSE: LBool = LBool(1);
    /// The unassigned value.
    pub const UNDEF: LBool = LBool(2);

    /// Creates a defined `LBool` from a `bool`.
    #[inline]
    pub fn from_bool(b: bool) -> LBool {
        LBool(!b as u8)
    }

    /// Returns `Some(bool)` when defined, `None` when unassigned.
    #[inline]
    pub fn to_option(self) -> Option<bool> {
        match self.0 {
            0 => Some(true),
            1 => Some(false),
            _ => None,
        }
    }

    /// Returns `true` when this value is [`LBool::TRUE`].
    #[inline]
    pub fn is_true(self) -> bool {
        self.0 == 0
    }

    /// Returns `true` when this value is [`LBool::FALSE`].
    #[inline]
    pub fn is_false(self) -> bool {
        self.0 == 1
    }

    /// Returns `true` when unassigned.
    #[inline]
    pub fn is_undef(self) -> bool {
        self.0 >= 2
    }

    /// Applies a literal's sign: the value of literal `l` over variable value
    /// `v` is `v.xor_sign(l.is_negative())`.
    #[inline]
    pub fn xor_sign(self, negate: bool) -> LBool {
        if self.0 >= 2 {
            self
        } else {
            LBool(self.0 ^ negate as u8)
        }
    }
}

impl Default for LBool {
    fn default() -> Self {
        LBool::UNDEF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lit_roundtrip() {
        for idx in [0usize, 1, 5, 1000] {
            let v = Var::from_index(idx);
            assert_eq!(v.index(), idx);
            let p = v.positive();
            let n = v.negative();
            assert!(p.is_positive());
            assert!(n.is_negative());
            assert_eq!(!p, n);
            assert_eq!(!n, p);
            assert_eq!(p.var(), v);
            assert_eq!(n.var(), v);
            assert_eq!(Lit::from_code(p.code()), p);
        }
    }

    #[test]
    fn lbool_xor_sign() {
        assert_eq!(LBool::TRUE.xor_sign(false), LBool::TRUE);
        assert_eq!(LBool::TRUE.xor_sign(true), LBool::FALSE);
        assert_eq!(LBool::FALSE.xor_sign(true), LBool::TRUE);
        assert!(LBool::UNDEF.xor_sign(true).is_undef());
        assert_eq!(LBool::from_bool(true), LBool::TRUE);
        assert_eq!(LBool::from_bool(false), LBool::FALSE);
        assert_eq!(LBool::TRUE.to_option(), Some(true));
        assert_eq!(LBool::FALSE.to_option(), Some(false));
        assert_eq!(LBool::UNDEF.to_option(), None);
    }
}
