//! The CDCL SAT solver.
//!
//! A conflict-driven clause-learning solver in the MiniSat lineage:
//! two-watched-literal propagation with **blocker literals** (each watcher
//! caches one other literal of its clause; when the blocker is already true
//! the clause is satisfied and propagation skips dereferencing it — the
//! standard MiniSat-lineage cache-miss avoidance), first-UIP conflict
//! analysis with recursive clause minimization, VSIDS branching with phase
//! saving, Luby restarts, and activity/LBD-driven learned-clause reduction.
//!
//! Three features are specifically in service of the EMM/BMC stack built
//! on top (see the `emm-bmc` crate):
//!
//! * **Incremental solving under assumptions**
//!   ([`Solver::solve_with_assumptions`]) with
//!   [`Solver::failed_assumptions`] — the mechanism behind *group unsat
//!   cores*, which proof-based abstraction uses to compute latch reasons.
//! * **Clause retirement** ([`Solver::retire_clause`]) and **activation
//!   groups** ([`Solver::new_activation_group`] /
//!   [`Solver::retire_group`]) — physical deletion of redundant original
//!   clauses (watchers detached, level-0 reasons cleared, arena space
//!   reclaimed by the mark-and-compact GC), which is how the incremental
//!   BMC bound loop sheds refuted bounds' property clauses and how the
//!   sweeping sink deletes the Tseitin triples of merged-away gates.
//! * **Refutation tracing** ([`SolverConfig::proof_tracing`]) — every learned
//!   clause records its antecedents so that, on UNSAT,
//!   [`Solver::core_clause_ids`] returns the set of original clauses used in
//!   the refutation (the paper's `SAT_Get_Refutation`, ref. [20]).

use std::collections::HashMap;
use std::time::Instant;

use crate::clause::{ClauseDb, ClauseId, ClauseRef};
use crate::govern::{ExhaustionReason, FaultSite, ResourceGovernor};
use crate::heap::VarHeap;
use crate::inprocess::InprocessConfig;
use crate::lit::{LBool, Lit, Var};

/// The restart strategy the search loop runs under.
///
/// [`RestartPolicy::Luby`] is the classic fixed schedule (reluctant
/// doubling scaled by [`SolverConfig::restart_base`]).
/// [`RestartPolicy::Ema`] is the Glucose-style adaptive policy
/// (Audemard & Simon): the solver tracks a fast and a slow exponential
/// moving average of learned-clause LBD and restarts when the recent
/// average exceeds the long-run average by a margin — search is
/// abandoned exactly when the clauses being learned get worse than the
/// run's norm.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum RestartPolicy {
    /// Fixed Luby schedule (the historical default).
    #[default]
    Luby,
    /// Glucose-style adaptive restarts from LBD moving averages.
    Ema,
}

/// Tunable solver parameters.
///
/// Every field stays public, so struct-literal construction with
/// `..SolverConfig::default()` keeps working; new code should prefer
/// the chainable builder methods, which read the same at every call
/// site and keep compiling as knobs are added.
///
/// # Migration
///
/// Until the inprocessing kernel landed, drivers could not reach the
/// solver's heuristics at all — `BmcEngine` hardcoded
/// `SolverConfig::default()`. The configuration now travels on the
/// options surface: set it once on `PipelineOptions::solver` (crate
/// `emm-bmc`, mirrored by `VerifyOptions::solver`) and every solver
/// the pipeline creates — anchored, floating, k-induction step —
/// inherits it. Existing struct-literal call sites keep working
/// unchanged; the two new knob groups ([`RestartPolicy`] and
/// [`InprocessConfig`]) default to the previous behaviour
/// (Luby restarts) and to inprocessing-on with conservative caps.
///
/// ```
/// use emm_sat::{InprocessConfig, RestartPolicy, SolverConfig};
///
/// // Old style (still compiles):
/// let old = SolverConfig { restart_base: 50, ..SolverConfig::default() };
/// // New style:
/// let new = SolverConfig::default()
///     .restart_base(50)
///     .restart_policy(RestartPolicy::Ema)
///     .chrono_backtrack(Some(64))
///     .inprocess(InprocessConfig::default().probe(false));
/// assert_eq!(old.restart_base, new.restart_base);
/// assert_eq!(old.restart_policy, RestartPolicy::Luby);
/// ```
#[derive(Clone, Debug)]
pub struct SolverConfig {
    /// Multiplicative VSIDS decay applied per conflict (0 < d < 1).
    pub var_decay: f64,
    /// Multiplicative clause-activity decay applied per conflict.
    pub clause_decay: f64,
    /// Conflicts in the first Luby restart interval.
    pub restart_base: u64,
    /// Learned clauses kept before the first database reduction.
    pub first_reduce: u64,
    /// Additional learned clauses allowed after each reduction.
    pub reduce_increment: u64,
    /// Record antecedents of learned clauses so an unsat core of original
    /// clauses can be extracted after an UNSAT answer.
    pub proof_tracing: bool,
    /// Restart strategy (Luby schedule or Glucose-style EMA).
    pub restart_policy: RestartPolicy,
    /// Chronological backtracking: `Some(t)` keeps the trail and backs
    /// up a single level instead of backjumping whenever conflict
    /// analysis asks to unwind more than `t` levels (the learned clause
    /// is asserting one level below the conflict, so the assignment
    /// work of the skipped levels is preserved). `None` (the default)
    /// always backjumps to the asserting level.
    pub chrono_backtrack: Option<u32>,
    /// The inprocessing loop's knobs (see [`Solver::inprocess`]);
    /// enabled by default with conservative per-call effort caps.
    pub inprocess: InprocessConfig,
}

impl Default for SolverConfig {
    fn default() -> SolverConfig {
        SolverConfig {
            var_decay: 0.95,
            clause_decay: 0.999,
            restart_base: 100,
            first_reduce: 4000,
            reduce_increment: 1500,
            proof_tracing: false,
            restart_policy: RestartPolicy::Luby,
            chrono_backtrack: None,
            inprocess: InprocessConfig::default(),
        }
    }
}

impl SolverConfig {
    /// Sets the multiplicative VSIDS decay applied per conflict.
    pub fn var_decay(mut self, d: f64) -> SolverConfig {
        self.var_decay = d;
        self
    }

    /// Sets the multiplicative clause-activity decay per conflict.
    pub fn clause_decay(mut self, d: f64) -> SolverConfig {
        self.clause_decay = d;
        self
    }

    /// Sets the conflict count of the first Luby restart interval.
    pub fn restart_base(mut self, n: u64) -> SolverConfig {
        self.restart_base = n;
        self
    }

    /// Sets the learned-clause count before the first DB reduction.
    pub fn first_reduce(mut self, n: u64) -> SolverConfig {
        self.first_reduce = n;
        self
    }

    /// Sets the learned-clause allowance added after each reduction.
    pub fn reduce_increment(mut self, n: u64) -> SolverConfig {
        self.reduce_increment = n;
        self
    }

    /// Enables or disables refutation tracing.
    pub fn proof_tracing(mut self, on: bool) -> SolverConfig {
        self.proof_tracing = on;
        self
    }

    /// Selects the restart strategy.
    pub fn restart_policy(mut self, policy: RestartPolicy) -> SolverConfig {
        self.restart_policy = policy;
        self
    }

    /// Enables chronological backtracking with the given level-gap
    /// threshold (`None` disables it).
    pub fn chrono_backtrack(mut self, threshold: Option<u32>) -> SolverConfig {
        self.chrono_backtrack = threshold;
        self
    }

    /// Replaces the inprocessing configuration.
    pub fn inprocess(mut self, config: InprocessConfig) -> SolverConfig {
        self.inprocess = config;
        self
    }
}

/// Resource limits for a single [`Solver::solve_with`] call.
///
/// When a limit is exceeded the solver returns [`SolveResult::Unknown`],
/// mirroring the paper's time-limited experimental methodology (Table 1
/// reports `>3hr` timeouts for explicit memory modeling).
#[derive(Clone, Debug, Default)]
pub struct Budget {
    /// Maximum conflicts for this call, counted from the start of the
    /// call (`None` = unlimited).
    pub max_conflicts: Option<u64>,
    /// Wall-clock deadline for this call.
    pub deadline: Option<Instant>,
}

impl Budget {
    /// An unlimited budget.
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// A budget limited to `n` conflicts (deterministic across runs).
    pub fn conflicts(n: u64) -> Budget {
        Budget {
            max_conflicts: Some(n),
            deadline: None,
        }
    }

    /// A wall-clock budget of `d` from now.
    pub fn wall_clock(d: std::time::Duration) -> Budget {
        Budget {
            max_conflicts: None,
            deadline: Some(Instant::now() + d),
        }
    }

    /// Returns this budget with its deadline tightened to the earlier of
    /// the current one and `deadline` — the combine rule the BMC engine
    /// uses to merge a caller-supplied `solve_budget.deadline` with a
    /// per-check wall-clock deadline: the earlier of the two always wins,
    /// and a `None` on either side defers to the other.
    ///
    /// ```
    /// use emm_sat::Budget;
    /// use std::time::{Duration, Instant};
    /// let near = Instant::now() + Duration::from_secs(1);
    /// let far = near + Duration::from_secs(100);
    /// let b = Budget::conflicts(10).with_earlier_deadline(Some(far));
    /// assert_eq!(b.deadline, Some(far));
    /// let b = b.with_earlier_deadline(Some(near));
    /// assert_eq!(b.deadline, Some(near), "earlier deadline wins");
    /// let b = b.with_earlier_deadline(Some(far));
    /// assert_eq!(b.deadline, Some(near), "later deadline never loosens");
    /// let b = b.with_earlier_deadline(None);
    /// assert_eq!(b.deadline, Some(near));
    /// assert_eq!(b.max_conflicts, Some(10), "conflict cap untouched");
    /// ```
    pub fn with_earlier_deadline(mut self, deadline: Option<Instant>) -> Budget {
        self.deadline = match (self.deadline, deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self
    }
}

/// Outcome of a solve call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SolveResult {
    /// A satisfying assignment was found; read it with [`Solver::model_value`].
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// The budget was exhausted before an answer was reached.
    Unknown,
}

/// Aggregate search statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct SolverStats {
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Decisions made.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learned clauses currently retained.
    pub learned_clauses: u64,
    /// Learned clauses deleted by database reductions.
    pub deleted_clauses: u64,
    /// Garbage collections of the clause arena.
    pub gc_runs: u64,
    /// Clauses added by the user.
    pub original_clauses: u64,
    /// Original clauses retired by [`Solver::retire_clause`] /
    /// [`Solver::retire_group`].
    pub retired_clauses: u64,
    /// Conflicts resolved by chronological (single-level) backtracking
    /// instead of a full backjump.
    pub chrono_backtracks: u64,
    /// Clauses strengthened by inprocessing vivification.
    pub vivified_clauses: u64,
    /// Literals removed by inprocessing vivification.
    pub vivified_literals: u64,
    /// Learnt clauses deleted by inprocessing because another clause
    /// subsumes them.
    pub subsumed_clauses: u64,
    /// Literals removed by inprocessing subsumption machinery: the
    /// literals of deleted subsumed clauses plus one per
    /// self-subsuming-resolution strengthening.
    pub subsumed_literals: u64,
    /// Failed-literal probes run by inprocessing.
    pub probed_literals: u64,
    /// Level-0 units derived from failed probes.
    pub failed_literals: u64,
    /// Inprocessing passes that ran to completion (an early stop by the
    /// governor or the budget deadline does not count).
    pub inprocess_rounds: u64,
}

/// One entry of a watch list. `blocker` is a cached literal of the clause
/// (distinct from the watched one): if it is already true the clause is
/// satisfied and [`Solver::propagate`] skips loading the clause from the
/// arena entirely. Blockers may go stale across backtracking — that is
/// sound, it only costs the shortcut — but must always be a literal of the
/// clause (`watcher_blockers_stay_within_their_clause` checks this).
#[derive(Clone, Copy, Debug)]
struct Watcher {
    cref: ClauseRef,
    blocker: Lit,
}

/// Proof-tracing state: a DAG from derived clause ids to antecedent ids.
#[derive(Debug, Default)]
pub(crate) struct Tracer {
    /// `antecedents[id]` for derived (learned / level-0 unit) ids.
    antecedents: HashMap<u32, Box<[u32]>>,
    /// Ids corresponding to user-added clauses.
    original: Vec<bool>,
    /// For each var assigned at level 0: the derived id justifying it.
    unit_id: Vec<u32>,
    /// Scratch: antecedent ids of the clause currently being learned.
    current: Vec<u32>,
    /// Final refutation antecedents (seeds core extraction).
    final_ids: Vec<u32>,
}

const NO_ID: u32 = 0;

impl Tracer {
    fn mark_original(&mut self, id: ClauseId) {
        let idx = id.0 as usize;
        if self.original.len() <= idx {
            self.original.resize(idx + 1, false);
        }
        self.original[idx] = true;
    }

    fn is_original(&self, id: u32) -> bool {
        self.original.get(id as usize).copied().unwrap_or(false)
    }
}

/// The CDCL solver. See the crate docs for an overview.
///
/// ```
/// use emm_sat::{Solver, SolveResult};
/// let mut s = Solver::new();
/// let a = s.new_var().positive();
/// let b = s.new_var().positive();
/// s.add_clause(&[a, b]);
/// s.add_clause(&[!a]);
/// assert_eq!(s.solve(), SolveResult::Sat);
/// assert_eq!(s.model_value(b), Some(true));
/// ```
#[derive(Debug)]
pub struct Solver {
    pub(crate) config: SolverConfig,
    pub(crate) db: ClauseDb,
    /// `watches[p.code()]`: clauses that must be inspected when `p` becomes true
    /// (i.e. clauses in which `!p` is one of the two watched literals).
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<LBool>,
    level: Vec<u32>,
    reason: Vec<ClauseRef>,
    pub(crate) trail: Vec<Lit>,
    pub(crate) trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    order: VarHeap,
    polarity: Vec<bool>,
    pub(crate) learnts: Vec<ClauseRef>,
    /// Permanently unsatisfiable (an empty clause was derived at level 0).
    pub(crate) ok: bool,
    /// Analysis scratch.
    seen: Vec<u8>,
    analyze_stack: Vec<Lit>,
    analyze_clear: Vec<Var>,
    /// Model snapshot from the last SAT answer.
    model: Vec<LBool>,
    /// Failed assumptions from the last UNSAT-under-assumptions answer.
    conflict_set: Vec<Lit>,
    pub(crate) stats: SolverStats,
    next_clause_id: u32,
    pub(crate) tracer: Option<Tracer>,
    /// Core (original clause ids) from the last UNSAT answer, when tracing.
    last_core: Option<Vec<ClauseId>>,
    pub(crate) budget: Budget,
    pub(crate) governor: ResourceGovernor,
    /// Why the last solve call answered `Unknown` (cleared per call).
    exhaustion: Option<ExhaustionReason>,
    reduce_limit: u64,
    /// `id_refs[id]` = arena ref of the original clause with that tracking
    /// id (INVALID for learnt/derived ids and clauses never allocated or
    /// already retired). This is what makes [`Solver::retire_clause`] O(1):
    /// ids are stable across garbage collection, arena offsets are not.
    pub(crate) id_refs: Vec<ClauseRef>,
    /// Activation groups: group variable -> ids of the clauses guarded by
    /// it (see [`Solver::new_activation_group`]).
    pub(crate) groups: HashMap<Var, Vec<ClauseId>>,
    /// Fast/slow exponential moving averages of learned-clause LBD,
    /// driving [`RestartPolicy::Ema`].
    ema_fast: f64,
    ema_slow: f64,
    /// Rotating inprocessing cursors so successive calls spread their
    /// bounded effort across the whole database (clause-id index and
    /// variable index respectively).
    pub(crate) vivify_cursor: usize,
    pub(crate) probe_cursor: usize,
    /// Lifetime conflict count at the end of the previous
    /// `inprocess()` call — the base of the conflict-credit effort
    /// scaling (`InprocessConfig::scale_to_conflicts`).
    pub(crate) last_inprocess_conflicts: u64,
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

impl Solver {
    /// Creates a solver with default configuration.
    pub fn new() -> Solver {
        Solver::with_config(SolverConfig::default())
    }

    /// Creates a solver with the given configuration.
    pub fn with_config(config: SolverConfig) -> Solver {
        let tracer = config.proof_tracing.then(Tracer::default);
        let first_reduce = config.first_reduce;
        Solver {
            config,
            db: ClauseDb::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            order: VarHeap::new(),
            polarity: Vec::new(),
            learnts: Vec::new(),
            ok: true,
            seen: Vec::new(),
            analyze_stack: Vec::new(),
            analyze_clear: Vec::new(),
            model: Vec::new(),
            conflict_set: Vec::new(),
            stats: SolverStats::default(),
            next_clause_id: 1,
            tracer,
            last_core: None,
            budget: Budget::unlimited(),
            governor: ResourceGovernor::unlimited(),
            exhaustion: None,
            reduce_limit: first_reduce,
            id_refs: Vec::new(),
            groups: HashMap::new(),
            ema_fast: 0.0,
            ema_slow: 0.0,
            vivify_cursor: 0,
            probe_cursor: 0,
            last_inprocess_conflicts: 0,
        }
    }

    /// Number of variables created so far.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Creates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let var = Var::from_index(self.assigns.len());
        self.assigns.push(LBool::UNDEF);
        self.level.push(0);
        self.reason.push(ClauseRef::INVALID);
        self.activity.push(0.0);
        self.polarity.push(false);
        self.seen.push(0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.grow_to(self.assigns.len());
        self.order.insert(var, &self.activity);
        if let Some(tr) = &mut self.tracer {
            tr.unit_id.push(NO_ID);
        }
        var
    }

    /// Current decision level.
    #[inline]
    pub(crate) fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Current value of a literal.
    #[inline]
    pub(crate) fn lit_value(&self, lit: Lit) -> LBool {
        self.assigns[lit.var().index()].xor_sign(lit.is_negative())
    }

    /// Adds a clause; returns its tracking id, or `None` if the clause was a
    /// tautology (and therefore dropped).
    ///
    /// Duplicate literals are removed. If the clause is falsified outright at
    /// decision level zero the solver becomes permanently UNSAT and
    /// subsequent `solve` calls return [`SolveResult::Unsat`] immediately.
    ///
    /// # Panics
    ///
    /// Panics if called while the solver is not at decision level zero (the
    /// solver always returns to level zero after `solve`).
    pub fn add_clause(&mut self, lits: &[Lit]) -> Option<ClauseId> {
        assert_eq!(self.decision_level(), 0, "clauses must be added at level 0");
        if !self.ok {
            // Already UNSAT; accept and ignore.
            return None;
        }
        let mut sorted: Vec<Lit> = lits.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        // Tautology check: p and !p adjacent after sort.
        for w in sorted.windows(2) {
            if w[0].var() == w[1].var() {
                return None;
            }
        }
        let id = ClauseId(self.next_clause_id);
        self.next_clause_id += 1;
        self.stats.original_clauses += 1;
        if let Some(tr) = &mut self.tracer {
            tr.mark_original(id);
        }
        if sorted.is_empty() {
            self.ok = false;
            if let Some(tr) = &mut self.tracer {
                tr.final_ids = vec![id.0];
            }
            return Some(id);
        }
        // Reorder so the first two literals are the "best" watches:
        // true/unassigned literals first, then the highest-level false ones.
        let rank = |s: &Solver, l: Lit| -> u64 {
            match s.lit_value(l) {
                v if v.is_undef() => u64::MAX,
                v if v.is_true() => u64::MAX - 1,
                _ => s.level[l.var().index()] as u64,
            }
        };
        sorted.sort_by_key(|&l| std::cmp::Reverse(rank(self, l)));
        let v0 = self.lit_value(sorted[0]);
        if sorted.len() == 1
            || (v0.is_false())
            || (self.lit_value(sorted[1]).is_false() && !v0.is_true())
        {
            // Zero or one watchable literal: the clause is conflicting or unit
            // at level 0 (all assignments here are level-0 assignments).
            if v0.is_false() {
                self.ok = false;
                if let Some(_tr) = &self.tracer {
                    let mut ids = vec![id.0];
                    for &l in &sorted {
                        ids.push(self.level0_unit_id(l.var()));
                    }
                    self.tracer.as_mut().expect("traced").final_ids = ids;
                }
                return Some(id);
            }
            if v0.is_true() {
                // Satisfied at level 0; store it anyway when it can still be
                // a core member? A level-0 satisfied clause can never be in a
                // refutation driven by later clauses unless its unit was the
                // propagation source, which is already recorded. Drop it.
                return Some(id);
            }
            // Unit under level-0 assignment.
            let cref = self.db.alloc(&sorted, false, id);
            self.register_ref(id, cref);
            if sorted.len() >= 2 {
                self.attach(cref);
            }
            self.enqueue(sorted[0], cref);
            if let Some(confl) = self.propagate() {
                self.record_final_level0(confl);
                self.ok = false;
            }
            return Some(id);
        }
        let cref = self.db.alloc(&sorted, false, id);
        self.register_ref(id, cref);
        self.attach(cref);
        Some(id)
    }

    /// Records the arena location of an original clause so it can later be
    /// retired by id.
    pub(crate) fn register_ref(&mut self, id: ClauseId, cref: ClauseRef) {
        let idx = id.0 as usize;
        if self.id_refs.len() <= idx {
            self.id_refs.resize(idx + 1, ClauseRef::INVALID);
        }
        self.id_refs[idx] = cref;
    }

    /// Sets the resource budget for subsequent solve calls.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// Installs the pipeline-wide [`ResourceGovernor`]. Its deadline,
    /// lifetime conflict/propagation caps, memory ceiling, and shared
    /// cancellation token are enforced in addition to the per-call
    /// [`Budget`]; any trip makes solve calls answer
    /// [`SolveResult::Unknown`] with the trail back at level 0 and the
    /// reason readable via [`Solver::exhaustion_reason`].
    pub fn set_governor(&mut self, governor: ResourceGovernor) {
        self.governor = governor;
    }

    /// The installed governor (unlimited by default).
    pub fn governor(&self) -> &ResourceGovernor {
        &self.governor
    }

    /// Why the most recent solve call returned
    /// [`SolveResult::Unknown`], or `None` if it did not.
    pub fn exhaustion_reason(&self) -> Option<ExhaustionReason> {
        self.exhaustion
    }

    /// Accounted memory in bytes: live clause-arena words plus
    /// watcher-list entries — the two structures that grow with learned
    /// clauses. This is what the governor's memory ceiling is compared
    /// against, at GC points and periodically during search.
    pub fn memory_bytes(&self) -> usize {
        let arena = self.db.capacity_words() * std::mem::size_of::<u32>();
        let watchers: usize = self
            .watches
            .iter()
            .map(|w| w.len() * std::mem::size_of::<Watcher>())
            .sum();
        arena + watchers
    }

    /// The memory ceiling, checked only when one is set (the accounting
    /// walk is O(vars)).
    fn memory_tripped(&self) -> Option<ExhaustionReason> {
        if self.governor.memory_limit().is_some() {
            self.governor.check_memory(self.memory_bytes())
        } else {
            None
        }
    }

    /// Full governor check — cancellation, deadline, lifetime caps,
    /// memory ceiling — used at solve entry so an already-tripped
    /// governor refuses new work immediately.
    fn governor_exhausted(&self) -> Option<ExhaustionReason> {
        self.governor
            .poll()
            .or_else(|| {
                self.governor
                    .check_counters(self.stats.conflicts, self.stats.propagations)
            })
            .or_else(|| self.memory_tripped())
    }

    /// Returns accumulated statistics.
    pub fn stats(&self) -> &SolverStats {
        &self.stats
    }

    /// Solves without assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with(&[])
    }

    /// Shorthand for [`Solver::solve_with_assumptions`] (the historical
    /// spelling; both names resolve to the same implementation).
    ///
    /// On [`SolveResult::Unsat`], [`Solver::failed_assumptions`] returns a
    /// subset of the assumptions sufficient for unsatisfiability; if proof
    /// tracing is enabled, [`Solver::core_clause_ids`] additionally returns
    /// the original clauses used by the refutation.
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.solve_with_assumptions(assumptions)
    }

    /// Solves under the given assumption literals — the incremental-BMC
    /// entry point.
    ///
    /// Assumptions are temporary unit constraints: they hold for this call
    /// only and leave the clause database untouched, so one long-lived
    /// solver can answer a different query at every BMC bound while keeping
    /// all learned clauses. On [`SolveResult::Unsat`],
    /// [`Solver::failed_assumptions`] names the subset of assumptions the
    /// refutation needed.
    ///
    /// # Examples
    ///
    /// ```
    /// use emm_sat::{SolveResult, Solver};
    /// let mut s = Solver::new();
    /// let a = s.new_var().positive();
    /// let b = s.new_var().positive();
    /// s.add_clause(&[!a, b]);
    /// // Query 1: under `a`, propagation forces `b`.
    /// assert_eq!(s.solve_with_assumptions(&[a]), SolveResult::Sat);
    /// assert_eq!(s.model_value(b), Some(true));
    /// // Query 2: the same solver, incompatible assumptions.
    /// assert_eq!(s.solve_with_assumptions(&[a, !b]), SolveResult::Unsat);
    /// assert!(!s.failed_assumptions().is_empty());
    /// // The formula itself is untouched.
    /// assert_eq!(s.solve(), SolveResult::Sat);
    /// ```
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.model.clear();
        self.conflict_set.clear();
        self.last_core = None;
        self.exhaustion = None;
        if !self.ok {
            if let Some(tr) = &self.tracer {
                let seeds = tr.final_ids.clone();
                self.last_core = Some(self.expand_core(&seeds));
            }
            return SolveResult::Unsat;
        }
        debug_assert_eq!(self.decision_level(), 0);
        if let Some(confl) = self.propagate() {
            self.record_final_level0(confl);
            self.ok = false;
            return SolveResult::Unsat;
        }
        if let Some(reason) = self.governor_exhausted() {
            self.exhaustion = Some(reason);
            self.cancel_until(0);
            return SolveResult::Unknown;
        }

        let conflicts_at_start = self.stats.conflicts;
        let mut restart_count = 0u64;
        let result = loop {
            // Under the EMA policy the restart decision is taken inside
            // `search` from the LBD averages; the schedule cap is moot.
            let max_conflicts = match self.config.restart_policy {
                RestartPolicy::Luby => luby(restart_count) * self.config.restart_base,
                RestartPolicy::Ema => u64::MAX,
            };
            restart_count += 1;
            match self.search(max_conflicts, assumptions, conflicts_at_start) {
                SearchOutcome::Sat => break SolveResult::Sat,
                SearchOutcome::Unsat => break SolveResult::Unsat,
                SearchOutcome::Restart => {
                    self.stats.restarts += 1;
                    self.cancel_until(0);
                }
                SearchOutcome::BudgetExhausted => break SolveResult::Unknown,
            }
        };
        if result == SolveResult::Sat {
            self.model = self.assigns.clone();
        }
        self.cancel_until(0);
        result
    }

    /// Retires (physically deletes) an original clause: its watchers are
    /// removed, its arena space is reclaimed by the next garbage
    /// collection, and propagation never sees it again. Returns `true` if
    /// the clause was live and is now gone.
    ///
    /// # Soundness contract
    ///
    /// Learned clauses derived from the retired clause are **kept**, so the
    /// caller must only retire clauses that are *redundant* — entailed by
    /// the clauses that remain. The two patterns the BMC stack uses:
    ///
    /// * the Tseitin definition of a variable no remaining clause
    ///   references (a gate output substituted away by SAT sweeping) —
    ///   definitional extensions can be removed because any model of the
    ///   rest extends to the defined variable, which also repairs every
    ///   learned clause over it;
    /// * a clause satisfied by a level-0 unit (an activation-group clause
    ///   after [`Solver::retire_group`] asserted the group literal false).
    ///
    /// Retiring a clause that is *not* redundant weakens the formula and
    /// can change answers. With [`SolverConfig::proof_tracing`], cores
    /// reported after a retirement may still name retired clause ids —
    /// they were original clauses when the traced derivations happened.
    ///
    /// # Examples
    ///
    /// ```
    /// use emm_sat::{SolveResult, Solver};
    /// let mut s = Solver::new();
    /// let a = s.new_var().positive();
    /// let out = s.new_var().positive();
    /// // out = a & a, Tseitin-style; nothing else references `out`.
    /// let c1 = s.add_clause(&[!out, a]).unwrap();
    /// let c2 = s.add_clause(&[out, !a]).unwrap();
    /// assert!(s.retire_clause(c1));
    /// assert!(s.retire_clause(c2));
    /// assert!(!s.retire_clause(c1), "already retired");
    /// assert_eq!(s.stats().retired_clauses, 2);
    /// assert_eq!(s.solve(), SolveResult::Sat);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if called while the solver is not at decision level zero.
    pub fn retire_clause(&mut self, id: ClauseId) -> bool {
        assert_eq!(self.decision_level(), 0, "retire at level 0 only");
        let Some(&cref) = self.id_refs.get(id.0 as usize) else {
            return false;
        };
        if !cref.is_valid() {
            return false;
        }
        debug_assert!(!self.db.is_learnt(cref), "only original clauses retire");
        self.id_refs[id.0 as usize] = ClauseRef::INVALID;
        if self.db.len(cref) >= 2 {
            self.detach(cref);
        }
        // If the clause is the recorded reason of a level-0 assignment it
        // would dangle after deletion; the assignment itself is permanent,
        // so it degrades to a reason-less (root) assignment.
        let lits: Vec<Lit> = self.db.lits(cref).to_vec();
        for l in lits {
            let v = l.var().index();
            if self.reason[v] == cref {
                self.reason[v] = ClauseRef::INVALID;
            }
        }
        self.db.delete(cref);
        self.stats.retired_clauses += 1;
        self.governor.note(FaultSite::RetiredClause);
        if self.db.wasted() * 3 > self.db.capacity_words() {
            self.collect_garbage();
        }
        true
    }

    /// Creates an **activation group**: a fresh literal `g` guarding every
    /// clause later added through [`Solver::add_clause_in_group`]. Such
    /// clauses are enforced only while `g` is passed as an assumption, and
    /// the whole group can later be permanently removed with
    /// [`Solver::retire_group`] — the mechanism behind per-bound property
    /// clauses in the incremental BMC loop.
    pub fn new_activation_group(&mut self) -> Lit {
        let g = self.new_var().positive();
        self.groups.insert(g.var(), Vec::new());
        g
    }

    /// Adds `lits` as a clause of activation group `group`: the stored
    /// clause is `¬group ∨ lits…`, inert unless `group` is assumed.
    ///
    /// # Examples
    ///
    /// ```
    /// use emm_sat::{SolveResult, Solver};
    /// let mut s = Solver::new();
    /// let x = s.new_var().positive();
    /// let g = s.new_activation_group();
    /// s.add_clause_in_group(g, &[x]);
    /// // Active only under the group assumption.
    /// assert_eq!(s.solve_with_assumptions(&[g, !x]), SolveResult::Unsat);
    /// assert_eq!(s.solve_with_assumptions(&[!x]), SolveResult::Sat);
    /// // Retiring deletes the group's clauses for good.
    /// assert_eq!(s.retire_group(g), 1);
    /// assert_eq!(s.solve_with_assumptions(&[!x]), SolveResult::Sat);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `group` was not created by [`Solver::new_activation_group`]
    /// or has already been retired.
    pub fn add_clause_in_group(&mut self, group: Lit, lits: &[Lit]) -> Option<ClauseId> {
        assert!(
            self.groups.contains_key(&group.var()),
            "unknown or retired activation group"
        );
        let mut guarded = Vec::with_capacity(lits.len() + 1);
        guarded.push(!group);
        guarded.extend_from_slice(lits);
        let id = self.add_clause(&guarded);
        if let Some(id) = id {
            self.groups.get_mut(&group.var()).expect("checked").push(id);
        }
        id
    }

    /// Permanently dissolves an activation group: asserts `¬group` as a
    /// unit (so the group's clauses become level-0 satisfied, which makes
    /// their physical removal sound) and retires every clause added under
    /// it. Returns the number of clauses physically retired.
    ///
    /// Calling it on an unknown or already-retired group returns 0.
    pub fn retire_group(&mut self, group: Lit) -> usize {
        let Some(ids) = self.groups.remove(&group.var()) else {
            return 0;
        };
        self.add_clause(&[!group]);
        let mut retired = 0usize;
        for id in ids {
            if self.retire_clause(id) {
                retired += 1;
            }
        }
        retired
    }

    /// Value of `lit` in the model of the last [`SolveResult::Sat`] answer.
    ///
    /// Returns `None` if no model is available or the variable was created
    /// after the last solve.
    pub fn model_value(&self, lit: Lit) -> Option<bool> {
        self.model
            .get(lit.var().index())
            .and_then(|v| v.xor_sign(lit.is_negative()).to_option())
    }

    /// The subset of assumptions responsible for the last UNSAT answer.
    pub fn failed_assumptions(&self) -> &[Lit] {
        &self.conflict_set
    }

    /// Original clause ids used in the last refutation.
    ///
    /// Returns `None` unless the last solve returned UNSAT and
    /// [`SolverConfig::proof_tracing`] is enabled.
    pub fn core_clause_ids(&self) -> Option<&[ClauseId]> {
        self.last_core.as_deref()
    }

    /// Attempts to prove that the clauses added so far entail `a ≡ b`,
    /// spending at most `max_conflicts` conflicts per implication direction.
    ///
    /// Returns `Some(true)` when both `a → b` and `b → a` are entailed,
    /// `Some(false)` when a model separates the two literals, and `None`
    /// when the conflict budget ran out before an answer. The caller's
    /// [`Budget`] is saved and restored around the check, and the model /
    /// failed-assumption state of a previous solve is clobbered like any
    /// other `solve_with` call — callers (SAT sweeping) run between
    /// encoding and solving, where that state is dead.
    pub fn prove_equiv(&mut self, a: Lit, b: Lit, max_conflicts: u64) -> Option<bool> {
        if a == b {
            return Some(true);
        }
        let saved = self.budget.clone();
        self.set_budget(Budget::conflicts(max_conflicts));
        let forward = self.solve_with(&[a, !b]);
        let result = match forward {
            SolveResult::Sat => Some(false),
            SolveResult::Unknown => None,
            SolveResult::Unsat => match self.solve_with(&[!a, b]) {
                SolveResult::Sat => Some(false),
                SolveResult::Unknown => None,
                SolveResult::Unsat => Some(true),
            },
        };
        self.set_budget(saved);
        result
    }

    /// Suggested initial phase for `var` when it is next decided.
    pub fn set_polarity(&mut self, var: Var, positive: bool) {
        self.polarity[var.index()] = positive;
    }

    /// Returns `true` if an empty clause has been derived (formula UNSAT
    /// regardless of assumptions).
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    // ------------------------------------------------------------------
    // Search internals
    // ------------------------------------------------------------------

    fn search(
        &mut self,
        max_restart_conflicts: u64,
        assumptions: &[Lit],
        conflicts_at_start: u64,
    ) -> SearchOutcome {
        let mut conflicts_here = 0u64;
        loop {
            // Cooperative cancellation: one atomic load per propagation
            // round bounds the latency from token-set to return by a
            // single propagate/analyze cycle.
            if self.governor.is_cancelled() {
                self.exhaustion = Some(ExhaustionReason::Cancelled);
                return SearchOutcome::BudgetExhausted;
            }
            if let Some(confl) = self.propagate() {
                // Conflict.
                self.stats.conflicts += 1;
                conflicts_here += 1;
                self.governor.note(FaultSite::Conflict);
                if self.decision_level() == 0 {
                    self.record_final_level0(confl);
                    self.ok = false;
                    return SearchOutcome::Unsat;
                }
                if self.decision_level() <= assumptions.len() as u32 {
                    // Conflict among assumption levels: compute failed set.
                    self.analyze_final_conflict(confl);
                    return SearchOutcome::Unsat;
                }
                let (learnt, mut backtrack) = self.analyze(confl);
                // Chronological backtracking: when analysis asks to
                // unwind far, step back a single level instead. The
                // learnt clause is still asserting there — every
                // non-UIP literal sits at a level at or below the
                // computed backjump level, which is below the current
                // one — so the usual learn/enqueue path applies and the
                // trail stays level-ordered; the skipped levels'
                // assignments survive to be reused. Unit learnts must
                // take the full backjump to level 0 (`learn` asserts
                // them there).
                if let Some(threshold) = self.config.chrono_backtrack {
                    let dl = self.decision_level();
                    if learnt.len() > 1 && dl - backtrack > threshold && dl - backtrack > 1 {
                        backtrack = dl - 1;
                        self.stats.chrono_backtracks += 1;
                    }
                }
                self.cancel_until(backtrack);
                self.learn(learnt);
                self.decay_activities();
                if self.stats.learned_clauses > self.reduce_limit {
                    self.reduce_db();
                    self.reduce_limit += self.config.reduce_increment;
                    // A GC point: the arena was just compacted, so the
                    // accounted bytes reflect live clauses only.
                    if let Some(reason) = self.memory_tripped() {
                        self.exhaustion = Some(reason);
                        return SearchOutcome::BudgetExhausted;
                    }
                }
                if let Some(max) = self.budget.max_conflicts {
                    if self.stats.conflicts - conflicts_at_start >= max {
                        self.exhaustion = Some(ExhaustionReason::ConflictLimit);
                        return SearchOutcome::BudgetExhausted;
                    }
                }
                if let Some(reason) = self
                    .governor
                    .check_counters(self.stats.conflicts, self.stats.propagations)
                {
                    self.exhaustion = Some(reason);
                    return SearchOutcome::BudgetExhausted;
                }
                if self.stats.conflicts.is_multiple_of(1024) {
                    let deadline = match (self.budget.deadline, self.governor.deadline()) {
                        (Some(a), Some(b)) => Some(a.min(b)),
                        (a, b) => a.or(b),
                    };
                    if let Some(deadline) = deadline {
                        if Instant::now() >= deadline {
                            self.exhaustion = Some(ExhaustionReason::Deadline);
                            return SearchOutcome::BudgetExhausted;
                        }
                    }
                    if let Some(reason) = self.memory_tripped() {
                        self.exhaustion = Some(reason);
                        return SearchOutcome::BudgetExhausted;
                    }
                }
                let restart_due = match self.config.restart_policy {
                    RestartPolicy::Luby => conflicts_here >= max_restart_conflicts,
                    // Glucose-style trigger: the recent learnt-LBD
                    // average drifted above the long-run average by the
                    // margin, after a minimum number of conflicts since
                    // the last restart so the fast EMA has signal.
                    RestartPolicy::Ema => {
                        conflicts_here >= EMA_MIN_CONFLICTS
                            && self.ema_fast > self.ema_slow * EMA_MARGIN
                    }
                };
                if restart_due && self.decision_level() > assumptions.len() as u32 {
                    return SearchOutcome::Restart;
                }
            } else {
                // No conflict: establish assumptions, then decide.
                if (self.decision_level() as usize) < assumptions.len() {
                    let p = assumptions[self.decision_level() as usize];
                    match self.lit_value(p) {
                        v if v.is_true() => {
                            // Already satisfied: dummy level keeps indices aligned.
                            self.trail_lim.push(self.trail.len());
                            continue;
                        }
                        v if v.is_false() => {
                            self.analyze_final_assumption(p);
                            return SearchOutcome::Unsat;
                        }
                        _ => {
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(p, ClauseRef::INVALID);
                            continue;
                        }
                    }
                }
                // Decide.
                let next = loop {
                    match self.order.pop_max(&self.activity) {
                        Some(v) if self.assigns[v.index()].is_undef() => break Some(v),
                        Some(_) => continue,
                        None => break None,
                    }
                };
                match next {
                    None => return SearchOutcome::Sat,
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let lit = Lit::new(v, self.polarity[v.index()]);
                        self.enqueue(lit, ClauseRef::INVALID);
                    }
                }
            }
        }
    }

    pub(crate) fn attach(&mut self, cref: ClauseRef) {
        let lits = self.db.lits(cref);
        debug_assert!(lits.len() >= 2);
        let (l0, l1) = (lits[0], lits[1]);
        self.watches[(!l0).code()].push(Watcher { cref, blocker: l1 });
        self.watches[(!l1).code()].push(Watcher { cref, blocker: l0 });
    }

    pub(crate) fn enqueue(&mut self, lit: Lit, reason: ClauseRef) {
        debug_assert!(self.lit_value(lit).is_undef());
        let v = lit.var().index();
        self.assigns[v] = LBool::from_bool(lit.is_positive());
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(lit);
        if self.decision_level() == 0 {
            if let Some(tr) = &mut self.tracer {
                if tr.unit_id[v] == NO_ID && reason.is_valid() {
                    // Derive a unit id justifying this level-0 literal.
                    let rid = self.db.id(reason);
                    let rlits: Vec<Lit> = self.db.lits(reason).to_vec();
                    if rlits.len() == 1 {
                        tr.unit_id[v] = rid.0;
                    } else {
                        let mut ante = Vec::with_capacity(rlits.len());
                        ante.push(rid.0);
                        for l in rlits {
                            if l.var() != lit.var() {
                                let uid = tr.unit_id[l.var().index()];
                                debug_assert_ne!(uid, NO_ID, "level-0 reason lit lacks unit id");
                                ante.push(uid);
                            }
                        }
                        let fresh = self.next_clause_id;
                        self.next_clause_id += 1;
                        tr.antecedents.insert(fresh, ante.into_boxed_slice());
                        tr.unit_id[v] = fresh;
                    }
                }
            }
        }
    }

    pub(crate) fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let mut i = 0usize;
            let mut j = 0usize;
            let mut watchers = std::mem::take(&mut self.watches[p.code()]);
            let mut conflict = None;
            'watchers: while i < watchers.len() {
                let w = watchers[i];
                i += 1;
                if self.lit_value(w.blocker).is_true() {
                    watchers[j] = w;
                    j += 1;
                    continue;
                }
                let cref = w.cref;
                // Make sure the false literal is position 1.
                let false_lit = !p;
                {
                    let lits = self.db.lits_mut(cref);
                    if lits[0] == false_lit {
                        lits.swap(0, 1);
                    }
                    debug_assert_eq!(lits[1], false_lit);
                }
                let first = self.db.lits(cref)[0];
                if first != w.blocker && self.lit_value(first).is_true() {
                    watchers[j] = Watcher {
                        cref,
                        blocker: first,
                    };
                    j += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = self.db.len(cref);
                for k in 2..len {
                    let lk = self.db.lits(cref)[k];
                    if !self.lit_value(lk).is_false() {
                        self.db.lits_mut(cref).swap(1, k);
                        self.watches[(!lk).code()].push(Watcher {
                            cref,
                            blocker: first,
                        });
                        continue 'watchers;
                    }
                }
                // No new watch: clause is unit or conflicting.
                watchers[j] = Watcher {
                    cref,
                    blocker: first,
                };
                j += 1;
                if self.lit_value(first).is_false() {
                    // Conflict: copy remaining watchers and bail.
                    while i < watchers.len() {
                        watchers[j] = watchers[i];
                        i += 1;
                        j += 1;
                    }
                    self.qhead = self.trail.len();
                    conflict = Some(cref);
                } else {
                    self.enqueue(first, cref);
                }
            }
            watchers.truncate(j);
            self.watches[p.code()] = watchers;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    /// First-UIP conflict analysis; returns the learnt clause (UIP first) and
    /// the backtrack level.
    fn analyze(&mut self, confl: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::from_code(0)]; // placeholder for UIP
        let mut path_count = 0u32;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut confl = confl;
        if let Some(tr) = &mut self.tracer {
            tr.current.clear();
        }
        loop {
            self.bump_clause(confl);
            if self.tracer.is_some() {
                let cid = self.db.id(confl).0;
                if let Some(tr) = &mut self.tracer {
                    tr.current.push(cid);
                }
            }
            let lits: Vec<Lit> = self.db.lits(confl).to_vec();
            let start = if p.is_some() { 1 } else { 0 };
            for &q in &lits[start..] {
                let v = q.var();
                if self.seen[v.index()] == 0 {
                    let lvl = self.level[v.index()];
                    if lvl == 0 {
                        // Resolved away by a level-0 unit; record it.
                        if self.tracer.is_some() {
                            let uid = self.level0_unit_id(v);
                            if let Some(tr) = &mut self.tracer {
                                tr.current.push(uid);
                            }
                        }
                        continue;
                    }
                    self.seen[v.index()] = 1;
                    self.bump_var(v);
                    if lvl >= self.decision_level() {
                        path_count += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select next literal to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] != 0 {
                    break;
                }
            }
            let lit = self.trail[index];
            p = Some(lit);
            self.seen[lit.var().index()] = 0;
            path_count -= 1;
            if path_count == 0 {
                break;
            }
            confl = self.reason[lit.var().index()];
            debug_assert!(confl.is_valid(), "non-UIP literal must have a reason");
        }
        learnt[0] = !p.expect("UIP literal");

        // Mark remaining seen vars for minimization cleanup.
        self.analyze_clear.clear();
        for &l in &learnt[1..] {
            self.seen[l.var().index()] = 1;
            self.analyze_clear.push(l.var());
        }
        // Recursive minimization: drop literals implied by the rest.
        let mut kept = vec![learnt[0]];
        for &l in &learnt[1..] {
            if !self.reason[l.var().index()].is_valid() || !self.lit_redundant(l) {
                kept.push(l);
            }
        }
        for v in self.analyze_clear.drain(..) {
            self.seen[v.index()] = 0;
        }
        let mut learnt = kept;

        // Compute backtrack level: second-highest level in the clause.
        let backtrack = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };
        (learnt, backtrack)
    }

    /// Returns `true` if `lit` is implied by the other literals of the
    /// learnt clause (its reason tree bottoms out in seen literals).
    fn lit_redundant(&mut self, lit: Lit) -> bool {
        self.analyze_stack.clear();
        self.analyze_stack.push(lit);
        let top = self.analyze_clear.len();
        let mut recorded: Vec<u32> = Vec::new();
        while let Some(l) = self.analyze_stack.pop() {
            let cref = self.reason[l.var().index()];
            debug_assert!(cref.is_valid());
            if self.tracer.is_some() {
                recorded.push(self.db.id(cref).0);
            }
            let lits: Vec<Lit> = self.db.lits(cref).to_vec();
            for &q in &lits[1..] {
                let v = q.var();
                if self.seen[v.index()] == 0 {
                    let lvl = self.level[v.index()];
                    if lvl == 0 {
                        if self.tracer.is_some() {
                            let uid = self.level0_unit_id(v);
                            recorded.push(uid);
                        }
                        continue;
                    }
                    if self.reason[v.index()].is_valid() {
                        self.seen[v.index()] = 1;
                        self.analyze_clear.push(v);
                        self.analyze_stack.push(q);
                    } else {
                        // Hit a decision not in the clause: not redundant.
                        for v in self.analyze_clear.drain(top..) {
                            self.seen[v.index()] = 0;
                        }
                        return false;
                    }
                }
            }
        }
        if let Some(tr) = &mut self.tracer {
            tr.current.extend(recorded);
        }
        true
    }

    fn learn(&mut self, learnt: Vec<Lit>) {
        let fresh = self.next_clause_id;
        let id = if let Some(tr) = &mut self.tracer {
            self.next_clause_id += 1;
            let mut ante = std::mem::take(&mut tr.current);
            ante.sort_unstable();
            ante.dedup();
            tr.antecedents.insert(fresh, ante.into_boxed_slice());
            ClauseId(fresh)
        } else {
            ClauseId::UNTRACKED
        };
        if learnt.len() == 1 {
            debug_assert_eq!(self.decision_level(), 0);
            self.update_lbd_emas(1);
            let cref = self.db.alloc(&learnt, true, id);
            self.enqueue(learnt[0], cref);
            return;
        }
        let cref = self.db.alloc(&learnt, true, id);
        let lbd = self.compute_lbd(&learnt);
        self.update_lbd_emas(lbd);
        self.db.set_lbd(cref, lbd);
        self.bump_clause(cref);
        self.attach(cref);
        self.learnts.push(cref);
        self.stats.learned_clauses += 1;
        self.enqueue(learnt[0], cref);
    }

    /// Feeds one learnt clause's LBD into the restart EMAs. Both
    /// averages start at zero and warm up at their own rates; the
    /// [`EMA_MIN_CONFLICTS`] floor in the restart trigger covers the
    /// bias window after each restart.
    fn update_lbd_emas(&mut self, lbd: u32) {
        let lbd = lbd as f64;
        self.ema_fast += EMA_FAST_ALPHA * (lbd - self.ema_fast);
        self.ema_slow += EMA_SLOW_ALPHA * (lbd - self.ema_slow);
    }

    fn compute_lbd(&mut self, lits: &[Lit]) -> u32 {
        let mut levels: Vec<u32> = lits.iter().map(|l| self.level[l.var().index()]).collect();
        levels.sort_unstable();
        levels.dedup();
        levels.len() as u32
    }

    pub(crate) fn cancel_until(&mut self, target: u32) {
        if self.decision_level() <= target {
            return;
        }
        let bound = self.trail_lim[target as usize];
        for idx in (bound..self.trail.len()).rev() {
            let lit = self.trail[idx];
            let v = lit.var();
            self.polarity[v.index()] = lit.is_positive();
            self.assigns[v.index()] = LBool::UNDEF;
            self.reason[v.index()] = ClauseRef::INVALID;
            self.order.insert(v, &self.activity);
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(target as usize);
        self.qhead = self.trail.len();
    }

    fn bump_var(&mut self, var: Var) {
        self.activity[var.index()] += self.var_inc;
        if self.activity[var.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.update(var, &self.activity);
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        if !self.db.is_learnt(cref) {
            return;
        }
        let act = self.db.activity(cref) + self.cla_inc as f32;
        self.db.set_activity(cref, act);
        if act > 1e20 {
            for &c in &self.learnts {
                let a = self.db.activity(c);
                self.db.set_activity(c, a * 1e-20);
            }
            self.cla_inc *= 1e-20;
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc /= self.config.var_decay;
        self.cla_inc /= self.config.clause_decay;
    }

    /// Removes roughly half of the learned clauses (worst LBD/activity
    /// first), then compacts the arena when enough space is wasted.
    fn reduce_db(&mut self) {
        let mut candidates = std::mem::take(&mut self.learnts);
        // Worst clauses first: high LBD, then low activity.
        candidates.sort_by(|&a, &b| {
            let key = |c: ClauseRef| {
                (
                    std::cmp::Reverse(self.db.lbd(c)),
                    self.db.activity(c).to_bits(),
                )
            };
            key(a).cmp(&key(b))
        });
        let keep_from = candidates.len() / 2;
        let mut kept = Vec::with_capacity(candidates.len() - keep_from + 16);
        for (i, &cref) in candidates.iter().enumerate() {
            let locked = self.is_locked(cref);
            let core_quality = self.db.lbd(cref) <= 3;
            if i >= keep_from || locked || core_quality {
                kept.push(cref);
            } else {
                self.detach(cref);
                self.db.delete(cref);
                self.stats.learned_clauses -= 1;
                self.stats.deleted_clauses += 1;
            }
        }
        self.learnts = kept;
        if self.db.wasted() * 3 > self.db.capacity_words() {
            self.collect_garbage();
        }
    }

    fn is_locked(&self, cref: ClauseRef) -> bool {
        let first = self.db.lits(cref)[0];
        self.lit_value(first).is_true() && self.reason[first.var().index()] == cref
    }

    pub(crate) fn detach(&mut self, cref: ClauseRef) {
        let lits = self.db.lits(cref);
        let (l0, l1) = (lits[0], lits[1]);
        self.watches[(!l0).code()].retain(|w| w.cref != cref);
        self.watches[(!l1).code()].retain(|w| w.cref != cref);
    }

    pub(crate) fn collect_garbage(&mut self) {
        self.stats.gc_runs += 1;
        let mut map: HashMap<ClauseRef, ClauseRef> = HashMap::new();
        self.db.collect_garbage(|old, new| {
            map.insert(old, new);
        });
        let fix = |map: &HashMap<ClauseRef, ClauseRef>, c: &mut ClauseRef| {
            if c.is_valid() {
                *c = *map.get(c).copied().as_ref().unwrap_or(&ClauseRef::INVALID);
            }
        };
        for ws in &mut self.watches {
            ws.retain_mut(|w| {
                if let Some(&new) = map.get(&w.cref) {
                    w.cref = new;
                    true
                } else {
                    false
                }
            });
        }
        for r in &mut self.reason {
            fix(&map, r);
        }
        self.learnts.retain_mut(|c| {
            if let Some(&new) = map.get(c) {
                *c = new;
                true
            } else {
                false
            }
        });
        for r in &mut self.id_refs {
            if r.is_valid() {
                *r = map.get(r).copied().unwrap_or(ClauseRef::INVALID);
            }
        }
    }

    // ------------------------------------------------------------------
    // Final conflict analysis (assumptions and cores)
    // ------------------------------------------------------------------

    /// The derived unit id justifying a level-0 assignment of `v`.
    fn level0_unit_id(&self, v: Var) -> u32 {
        let tr = self.tracer.as_ref().expect("tracing enabled");
        let uid = tr.unit_id[v.index()];
        debug_assert_ne!(uid, NO_ID, "level-0 var without unit id");
        uid
    }

    /// Conflict at decision level 0: the formula itself is UNSAT.
    fn record_final_level0(&mut self, confl: ClauseRef) {
        if self.tracer.is_none() {
            return;
        }
        let mut ids = vec![self.db.id(confl).0];
        let lits: Vec<Lit> = self.db.lits(confl).to_vec();
        for l in lits {
            ids.push(self.level0_unit_id(l.var()));
        }
        let core = self.expand_core(&ids);
        self.tracer.as_mut().expect("traced").final_ids = ids;
        self.last_core = Some(core);
    }

    /// Assumption literal `p` is already false: walk its reason chain.
    fn analyze_final_assumption(&mut self, p: Lit) {
        self.conflict_set.clear();
        self.conflict_set.push(p);
        let mut core_ids: Vec<u32> = Vec::new();
        if self.level[p.var().index()] == 0 {
            if self.tracer.is_some() {
                core_ids.push(self.level0_unit_id(p.var()));
                self.last_core = Some(self.expand_core(&core_ids));
            }
            // !p holds at level 0: p alone is the failed assumption, and with
            // tracing the core is the refutation of p.
            return;
        }
        // Walk backwards from !p through reasons.
        self.analyze_final_walk(vec![!p], &mut core_ids);
        if self.tracer.is_some() {
            self.last_core = Some(self.expand_core(&core_ids));
        }
    }

    /// Conflict while all decisions are assumptions: failed set from the
    /// conflicting clause.
    fn analyze_final_conflict(&mut self, confl: ClauseRef) {
        self.conflict_set.clear();
        let mut core_ids: Vec<u32> = Vec::new();
        if self.tracer.is_some() {
            core_ids.push(self.db.id(confl).0);
        }
        let seeds: Vec<Lit> = self.db.lits(confl).to_vec();
        self.analyze_final_walk(seeds, &mut core_ids);
        if self.tracer.is_some() {
            self.last_core = Some(self.expand_core(&core_ids));
        }
    }

    /// Shared reason-graph walk for final conflicts. `seeds` are false
    /// literals; assumption decisions reached are added (negated) to the
    /// conflict set, traversed clause ids to `core_ids`.
    fn analyze_final_walk(&mut self, seeds: Vec<Lit>, core_ids: &mut Vec<u32>) {
        let mut stack: Vec<Var> = Vec::new();
        for l in &seeds {
            let v = l.var();
            if self.level[v.index()] > 0 && self.seen[v.index()] == 0 {
                self.seen[v.index()] = 1;
                stack.push(v);
            } else if self.level[v.index()] == 0 && self.tracer.is_some() {
                core_ids.push(self.level0_unit_id(v));
            }
        }
        let mut cleanup = stack.clone();
        while let Some(v) = stack.pop() {
            let r = self.reason[v.index()];
            if !r.is_valid() {
                // A decision: under assumption solving all decisions at these
                // levels are assumptions.
                let val = self.assigns[v.index()];
                let lit = Lit::new(v, val.is_true());
                self.conflict_set.push(lit);
                continue;
            }
            if self.tracer.is_some() {
                core_ids.push(self.db.id(r).0);
            }
            let lits: Vec<Lit> = self.db.lits(r).to_vec();
            for q in lits {
                let qv = q.var();
                if qv == v {
                    continue;
                }
                if self.level[qv.index()] == 0 {
                    if self.tracer.is_some() {
                        core_ids.push(self.level0_unit_id(qv));
                    }
                } else if self.seen[qv.index()] == 0 {
                    self.seen[qv.index()] = 1;
                    cleanup.push(qv);
                    stack.push(qv);
                }
            }
        }
        for v in cleanup {
            self.seen[v.index()] = 0;
        }
        self.conflict_set.sort_unstable_by_key(|l| l.code());
        self.conflict_set.dedup();
    }

    /// Expands derived ids through the antecedent DAG to original clause ids.
    fn expand_core(&self, seeds: &[u32]) -> Vec<ClauseId> {
        let tr = self.tracer.as_ref().expect("tracing enabled");
        let mut visited: std::collections::HashSet<u32> = std::collections::HashSet::new();
        let mut out: Vec<ClauseId> = Vec::new();
        let mut stack: Vec<u32> = seeds.to_vec();
        while let Some(id) = stack.pop() {
            if id == NO_ID || !visited.insert(id) {
                continue;
            }
            if tr.is_original(id) {
                out.push(ClauseId(id));
            } else if let Some(ante) = tr.antecedents.get(&id) {
                stack.extend(ante.iter().copied());
            }
        }
        out.sort_unstable();
        out
    }
}

/// [`RestartPolicy::Ema`] tuning (Audemard & Simon's Glucose family):
/// the fast average tracks the last ~32 learnt clauses, the slow one
/// the last ~4096; a restart fires when fast exceeds slow by 25%, but
/// never within the first 50 conflicts after the previous restart.
const EMA_FAST_ALPHA: f64 = 1.0 / 32.0;
const EMA_SLOW_ALPHA: f64 = 1.0 / 4096.0;
const EMA_MARGIN: f64 = 1.25;
const EMA_MIN_CONFLICTS: u64 = 50;

#[derive(Debug, PartialEq, Eq)]
enum SearchOutcome {
    Sat,
    Unsat,
    Restart,
    BudgetExhausted,
}

/// The Luby restart sequence: 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, …
fn luby(mut i: u64) -> u64 {
    // Find the finite subsequence containing index i.
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < i + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != i {
        size = (size - 1) / 2;
        seq -= 1;
        i %= size;
    }
    1u64 << seq
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars(s: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| s.new_var().positive()).collect()
    }

    #[test]
    fn trivial_sat_unsat() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause(&[v[0], v[1]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        s.add_clause(&[!v[0]]);
        s.add_clause(&[!v[1]]);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(!s.is_ok());
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn unit_propagation_chain() {
        let mut s = Solver::new();
        let v = vars(&mut s, 5);
        for i in 0..4 {
            s.add_clause(&[!v[i], v[i + 1]]);
        }
        s.add_clause(&[v[0]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        for (i, &l) in v.iter().enumerate() {
            assert_eq!(s.model_value(l), Some(true), "v{i}");
        }
    }

    #[test]
    fn model_respects_all_clauses() {
        let mut s = Solver::new();
        let v = vars(&mut s, 4);
        let clauses: Vec<Vec<Lit>> = vec![
            vec![v[0], v[1], v[2]],
            vec![!v[0], v[3]],
            vec![!v[1], !v[3]],
            vec![!v[2], v[1]],
            vec![v[2], v[3]],
        ];
        for c in &clauses {
            s.add_clause(c);
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        for c in &clauses {
            assert!(
                c.iter().any(|&l| s.model_value(l) == Some(true)),
                "clause {c:?} not satisfied"
            );
        }
    }

    /// Pigeonhole principle PHP(n+1, n) is unsatisfiable and requires real
    /// conflict-driven search.
    #[allow(clippy::needless_range_loop)]
    fn pigeonhole(s: &mut Solver, pigeons: usize, holes: usize) {
        let mut p = vec![vec![]; pigeons];
        for row in p.iter_mut() {
            *row = (0..holes)
                .map(|_| s.new_var().positive())
                .collect::<Vec<_>>();
        }
        for row in &p {
            s.add_clause(row);
        }
        for h in 0..holes {
            for i in 0..pigeons {
                for j in i + 1..pigeons {
                    s.add_clause(&[!p[i][h], !p[j][h]]);
                }
            }
        }
    }

    #[test]
    fn pigeonhole_unsat() {
        for n in 2..=6 {
            let mut s = Solver::new();
            pigeonhole(&mut s, n + 1, n);
            assert_eq!(s.solve(), SolveResult::Unsat, "PHP({},{})", n + 1, n);
        }
    }

    #[test]
    fn pigeonhole_sat_when_enough_holes() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 5, 5);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn assumptions_and_failed_set() {
        let mut s = Solver::new();
        let v = vars(&mut s, 4);
        // a & b -> false; c free.
        s.add_clause(&[!v[0], !v[1]]);
        assert_eq!(s.solve_with(&[v[0], v[1], v[2]]), SolveResult::Unsat);
        let failed = s.failed_assumptions().to_vec();
        assert!(failed.contains(&v[0]) || failed.contains(&v[1]));
        assert!(
            !failed.contains(&v[2]),
            "irrelevant assumption in failed set"
        );
        // Solver remains usable.
        assert_eq!(s.solve_with(&[v[0], v[2]]), SolveResult::Sat);
        assert_eq!(s.model_value(v[0]), Some(true));
        assert_eq!(s.model_value(v[1]), Some(false));
        let _ = v[3];
    }

    #[test]
    fn assumption_false_at_level0() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause(&[!v[0]]);
        assert_eq!(s.solve_with(&[v[0]]), SolveResult::Unsat);
        assert_eq!(s.failed_assumptions(), &[v[0]]);
        assert_eq!(s.solve_with(&[v[1]]), SolveResult::Sat);
    }

    #[test]
    fn incremental_add_after_solve() {
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        s.add_clause(&[v[0], v[1]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        s.add_clause(&[!v[0]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(v[1]), Some(true));
        s.add_clause(&[!v[1], v[2]]);
        s.add_clause(&[!v[2]]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn tautology_is_dropped() {
        let mut s = Solver::new();
        let v = vars(&mut s, 1);
        assert!(s.add_clause(&[v[0], !v[0]]).is_none());
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn duplicate_literals_deduped() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause(&[v[0], v[0], v[1]]);
        s.add_clause(&[!v[0]]);
        s.add_clause(&[!v[1], !v[0]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(v[1]), Some(true));
    }

    #[test]
    fn conflict_budget_returns_unknown() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 9, 8);
        s.set_budget(Budget::conflicts(10));
        assert_eq!(s.solve(), SolveResult::Unknown);
        s.set_budget(Budget::unlimited());
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn core_tracing_pigeonhole() {
        let mut s = Solver::with_config(SolverConfig {
            proof_tracing: true,
            ..SolverConfig::default()
        });
        pigeonhole(&mut s, 4, 3);
        assert_eq!(s.solve(), SolveResult::Unsat);
        let core = s.core_clause_ids().expect("tracing enabled").to_vec();
        assert!(!core.is_empty());
        // Replay the core alone: it must be UNSAT.
        let mut s2 = Solver::new();
        let mut replay: Vec<Vec<Lit>> = Vec::new();
        {
            // Rebuild PHP(4,3) clause list in the same order to map ids.
            let mut probe = Solver::new();
            let mut id_to_clause: HashMap<u32, Vec<Lit>> = HashMap::new();
            let add = |probe: &mut Solver, lits: Vec<Lit>, map: &mut HashMap<u32, Vec<Lit>>| {
                if let Some(id) = probe.add_clause(&lits) {
                    map.insert(id.0, lits);
                }
            };
            let p: Vec<Vec<Lit>> = (0..4)
                .map(|_| (0..3).map(|_| probe.new_var().positive()).collect())
                .collect();
            for row in &p {
                add(&mut probe, row.clone(), &mut id_to_clause);
            }
            for h in 0..3 {
                for i in 0..4 {
                    for j in i + 1..4 {
                        add(&mut probe, vec![!p[i][h], !p[j][h]], &mut id_to_clause);
                    }
                }
            }
            for _ in 0..12 {
                s2.new_var();
            }
            for cid in &core {
                replay.push(id_to_clause[&cid.0].clone());
            }
        }
        for c in &replay {
            s2.add_clause(c);
        }
        assert_eq!(s2.solve(), SolveResult::Unsat, "core replay must be UNSAT");
    }

    #[test]
    fn core_excludes_irrelevant_clauses() {
        let mut s = Solver::with_config(SolverConfig {
            proof_tracing: true,
            ..SolverConfig::default()
        });
        let v = vars(&mut s, 4);
        let irrelevant = s.add_clause(&[v[2], v[3]]).expect("id");
        let relevant1 = s.add_clause(&[v[0]]).expect("id");
        let relevant2 = s.add_clause(&[!v[0], v[1]]).expect("id");
        let relevant3 = s.add_clause(&[!v[1]]).expect("id");
        assert_eq!(s.solve(), SolveResult::Unsat);
        let core = s.core_clause_ids().expect("core").to_vec();
        assert!(core.contains(&relevant1));
        assert!(core.contains(&relevant2));
        assert!(core.contains(&relevant3));
        assert!(!core.contains(&irrelevant));
    }

    #[test]
    fn luby_sequence() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(luby(i as u64), e, "luby({i})");
        }
    }

    #[test]
    fn phase_saving_keeps_model_stable() {
        let mut s = Solver::new();
        let v = vars(&mut s, 6);
        s.add_clause(&[v[0], v[1]]);
        s.add_clause(&[v[2], v[3]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        let before: Vec<_> = v.iter().map(|&l| s.model_value(l)).collect();
        assert_eq!(s.solve(), SolveResult::Sat);
        let after: Vec<_> = v.iter().map(|&l| s.model_value(l)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn solver_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Solver>();
    }

    /// Audits the two-watched-literal invariants after heavy search: every
    /// watcher references a live clause, watches one of its first two
    /// literals, and caches a blocker that is a *different* literal of the
    /// same clause. Learned-clause reduction and arena GC both rewrite the
    /// watch lists, so drive enough conflicts to trigger them first.
    #[test]
    fn watcher_blockers_stay_within_their_clause() {
        let mut s = Solver::with_config(SolverConfig {
            first_reduce: 50,
            reduce_increment: 50,
            ..SolverConfig::default()
        });
        pigeonhole(&mut s, 8, 7);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats.deleted_clauses > 0, "reduction must have run");
        let mut checked = 0usize;
        for code in 0..s.watches.len() {
            let p = Lit::from_code(code);
            for w in &s.watches[code] {
                let lits = s.db.lits(w.cref);
                assert!(
                    lits[0] == !p || lits[1] == !p,
                    "watched literal {:?} not in the first two of {:?}",
                    !p,
                    lits
                );
                assert!(
                    lits.contains(&w.blocker),
                    "blocker {:?} is not a literal of {:?}",
                    w.blocker,
                    lits
                );
                assert_ne!(
                    w.blocker, !p,
                    "blocker must differ from the watched literal"
                );
                checked += 1;
            }
        }
        assert!(checked > 0, "no watchers inspected");
    }

    /// Retiring the Tseitin definition of an otherwise-unreferenced output
    /// variable keeps answers over the remaining variables intact, even
    /// after search learned clauses from the definition.
    #[test]
    fn retire_definition_preserves_answers() {
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        let out = s.new_var().positive();
        // out = v0 & v1.
        let ids: Vec<ClauseId> = [
            s.add_clause(&[!out, v[0]]),
            s.add_clause(&[!out, v[1]]),
            s.add_clause(&[out, !v[0], !v[1]]),
        ]
        .into_iter()
        .flatten()
        .collect();
        s.add_clause(&[v[0], v[2]]);
        assert_eq!(s.solve_with(&[out]), SolveResult::Sat);
        for id in ids {
            assert!(s.retire_clause(id));
        }
        assert_eq!(s.stats().retired_clauses, 3);
        // The rest of the formula is unchanged.
        assert_eq!(s.solve_with(&[!v[0], !v[2]]), SolveResult::Unsat);
        assert_eq!(s.solve_with(&[!v[0], v[2]]), SolveResult::Sat);
        // `out` itself is now unconstrained.
        assert_eq!(s.solve_with(&[out, !v[0]]), SolveResult::Sat);
    }

    /// A retired clause that was the level-0 reason of a propagated literal
    /// must not leave a dangling reason pointer behind.
    #[test]
    fn retire_level0_reason_clause() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        let id = s.add_clause(&[!v[0], v[1]]).expect("id");
        s.add_clause(&[v[0]]); // propagates v1 at level 0 with reason `id`
        assert!(s.retire_clause(id));
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(v[1]), Some(true), "assignment is permanent");
        // Heavy search afterwards must stay sound (reason walks, GC).
        pigeonhole(&mut s, 6, 5);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    /// Retired space is compacted: enough retirements trigger a GC, and
    /// ids keep resolving correctly across the relocation.
    #[test]
    fn retirement_triggers_gc_and_ids_survive() {
        let mut s = Solver::new();
        let v = vars(&mut s, 8);
        let mut ids = Vec::new();
        for i in 0..6 {
            for j in i + 1..7 {
                ids.push(s.add_clause(&[v[i], v[j], v[7]]).expect("id"));
            }
        }
        let keep = ids.split_off(ids.len() / 2);
        for id in ids {
            assert!(s.retire_clause(id));
        }
        assert!(s.stats().gc_runs > 0, "bulk retirement must compact");
        // Clauses kept across the GC still retire by their stable id.
        for id in keep {
            assert!(s.retire_clause(id));
        }
        assert_eq!(s.solve_with(&[!v[7]]), SolveResult::Sat);
    }

    #[test]
    fn activation_group_lifecycle() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        let g1 = s.new_activation_group();
        let g2 = s.new_activation_group();
        s.add_clause_in_group(g1, &[v[0]]);
        s.add_clause_in_group(g1, &[!v[0], v[1]]);
        s.add_clause_in_group(g2, &[!v[1]]);
        // Groups compose through assumptions.
        assert_eq!(s.solve_with(&[g1]), SolveResult::Sat);
        assert_eq!(s.model_value(v[1]), Some(true));
        assert_eq!(s.solve_with(&[g1, g2]), SolveResult::Unsat);
        // Retiring g1 deletes its two clauses and deactivates it for good.
        assert_eq!(s.retire_group(g1), 2);
        assert_eq!(s.retire_group(g1), 0, "second retire is a no-op");
        assert_eq!(s.solve_with(&[g2, !v[0]]), SolveResult::Sat);
        assert_eq!(s.stats().retired_clauses, 2);
    }

    /// Assuming a retired group is simply UNSAT-under-assumption (its
    /// literal is pinned false), not an error — callers holding a stale
    /// activation literal get a clean answer.
    #[test]
    fn retired_group_assumption_fails_cleanly() {
        let mut s = Solver::new();
        let v = vars(&mut s, 1);
        let g = s.new_activation_group();
        s.add_clause_in_group(g, &[v[0]]);
        s.retire_group(g);
        assert_eq!(s.solve_with(&[g]), SolveResult::Unsat);
        assert_eq!(s.failed_assumptions(), &[g]);
    }

    /// After a mid-search budget exhaustion the solver must be reusable:
    /// trail back at decision level 0, assumptions cleared (they were
    /// temporary), and subsequent solves — with or without assumptions —
    /// answer correctly on the same instance.
    #[test]
    fn state_clean_after_budget_exhaustion() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 9, 8);
        let extra = s.new_var().positive();
        s.set_budget(Budget::conflicts(10));
        assert_eq!(s.solve_with(&[extra]), SolveResult::Unknown);
        assert_eq!(s.exhaustion_reason(), Some(ExhaustionReason::ConflictLimit));
        // Level-0 clean: no decisions or assumption levels left behind.
        assert_eq!(s.decision_level(), 0);
        assert!(s.trail.iter().all(|l| s.level[l.var().index()] == 0));
        assert!(
            s.assigns[extra.var().index()].is_undef(),
            "assumption must not outlive the exhausted call"
        );
        // The same solver answers correctly once the budget is raised,
        // both under the old assumption and its negation.
        s.set_budget(Budget::unlimited());
        assert_eq!(s.solve_with(&[extra]), SolveResult::Unsat);
        assert_eq!(s.solve_with(&[!extra]), SolveResult::Unsat);
    }

    /// Cooperative cancellation: a pre-set token makes the solve answer
    /// `Unknown` immediately; clearing it restores full function.
    #[test]
    fn cancellation_token_stops_and_resumes() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 5, 4);
        let gov = ResourceGovernor::unlimited();
        s.set_governor(gov.clone());
        gov.cancel();
        assert_eq!(s.solve(), SolveResult::Unknown);
        assert_eq!(s.exhaustion_reason(), Some(ExhaustionReason::Cancelled));
        gov.reset_cancellation();
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert_eq!(s.exhaustion_reason(), None);
    }

    /// The fault injector trips cancellation after exactly the Nth
    /// conflict, deterministically.
    #[test]
    fn fault_injection_trips_after_nth_conflict() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 9, 8);
        s.set_governor(ResourceGovernor::unlimited().with_fault(FaultSite::Conflict, 7));
        assert_eq!(s.solve(), SolveResult::Unknown);
        assert_eq!(s.exhaustion_reason(), Some(ExhaustionReason::Cancelled));
        assert_eq!(
            s.stats().conflicts,
            7,
            "stopped right after the 7th conflict"
        );
        s.set_governor(ResourceGovernor::unlimited());
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    /// Governor work caps are lifetime caps: once the solver's total
    /// conflicts pass the cap, every solve answers `Unknown` until the
    /// governor is replaced.
    #[test]
    fn governor_conflict_cap_is_lifetime() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 9, 8);
        s.set_governor(ResourceGovernor::unlimited().with_max_conflicts(20));
        assert_eq!(s.solve(), SolveResult::Unknown);
        assert_eq!(s.exhaustion_reason(), Some(ExhaustionReason::ConflictLimit));
        assert_eq!(s.solve(), SolveResult::Unknown, "still capped");
        s.set_governor(ResourceGovernor::unlimited());
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn governor_propagation_cap_trips() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 9, 8);
        s.set_governor(ResourceGovernor::unlimited().with_max_propagations(50));
        assert_eq!(s.solve(), SolveResult::Unknown);
        assert_eq!(
            s.exhaustion_reason(),
            Some(ExhaustionReason::PropagationLimit)
        );
    }

    /// The memory ceiling is honest: a ceiling below the current
    /// accounted bytes refuses work, one above them lets learning run
    /// until growth trips it, and raising the ceiling resumes to the
    /// real answer on the same solver.
    #[test]
    fn memory_ceiling_degrades_and_resumes() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 9, 8);
        assert!(s.memory_bytes() > 0);
        s.set_governor(ResourceGovernor::unlimited().with_memory_limit(1));
        assert_eq!(s.solve(), SolveResult::Unknown);
        assert_eq!(s.exhaustion_reason(), Some(ExhaustionReason::MemoryLimit));
        let headroom = s.memory_bytes() + 2048;
        s.set_governor(ResourceGovernor::unlimited().with_memory_limit(headroom));
        assert_eq!(s.solve(), SolveResult::Unknown, "learning outgrows 2 KiB");
        assert_eq!(s.exhaustion_reason(), Some(ExhaustionReason::MemoryLimit));
        s.set_governor(ResourceGovernor::unlimited());
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    /// Pins the `Budget::with_earlier_deadline` min-combine rule the BMC
    /// engine relies on: the earlier deadline always wins, `None` defers.
    #[test]
    fn budget_deadline_min_combine() {
        let near = Instant::now() + std::time::Duration::from_secs(5);
        let far = near + std::time::Duration::from_secs(100);
        let cases = [
            (None, None, None),
            (Some(near), None, Some(near)),
            (None, Some(near), Some(near)),
            (Some(near), Some(far), Some(near)),
            (Some(far), Some(near), Some(near)),
        ];
        for (own, other, want) in cases {
            let b = Budget {
                max_conflicts: Some(3),
                deadline: own,
            };
            let combined = b.with_earlier_deadline(other);
            assert_eq!(combined.deadline, want, "own={own:?} other={other:?}");
            assert_eq!(combined.max_conflicts, Some(3));
        }
    }

    /// The blocker fast path must never change answers: solve the same
    /// instances with propagation exercised through repeated incremental
    /// calls under assumptions.
    #[test]
    fn propagation_answers_stable_across_incremental_calls() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 5, 5);
        let extra: Vec<Lit> = (0..4).map(|_| s.new_var().positive()).collect();
        s.add_clause(&[extra[0], extra[1]]);
        s.add_clause(&[!extra[1], extra[2]]);
        for round in 0..20 {
            let a = extra[round % 4];
            let r1 = s.solve_with(&[a]);
            let r2 = s.solve_with(&[a]);
            assert_eq!(r1, r2, "round {round}: nondeterministic answer under {a:?}");
        }
    }
}
