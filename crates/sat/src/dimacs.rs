//! Minimal DIMACS CNF reading/writing, used by tests and debugging tools.

use std::fmt::Write as _;

use crate::lit::{Lit, Var};

/// A parsed DIMACS CNF instance.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cnf {
    /// Declared (or inferred) variable count.
    pub num_vars: usize,
    /// The clauses.
    pub clauses: Vec<Vec<Lit>>,
}

/// Error parsing a DIMACS file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDimacsError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "dimacs parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseDimacsError {}

impl Cnf {
    /// Parses DIMACS CNF text.
    ///
    /// # Errors
    ///
    /// Returns [`ParseDimacsError`] on malformed input (bad tokens, literal
    /// indices exceeding the header, unterminated clauses are tolerated).
    pub fn parse(text: &str) -> Result<Cnf, ParseDimacsError> {
        let mut cnf = Cnf::default();
        let mut current: Vec<Lit> = Vec::new();
        let mut declared_vars: Option<usize> = None;
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('c') {
                continue;
            }
            if let Some(rest) = line.strip_prefix('p') {
                let mut it = rest.split_whitespace();
                if it.next() != Some("cnf") {
                    return Err(ParseDimacsError {
                        line: lineno + 1,
                        message: "expected 'p cnf <vars> <clauses>'".into(),
                    });
                }
                let vars: usize =
                    it.next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| ParseDimacsError {
                            line: lineno + 1,
                            message: "bad variable count".into(),
                        })?;
                declared_vars = Some(vars);
                cnf.num_vars = vars;
                continue;
            }
            for tok in line.split_whitespace() {
                let v: i64 = tok.parse().map_err(|_| ParseDimacsError {
                    line: lineno + 1,
                    message: format!("bad literal token {tok:?}"),
                })?;
                if v == 0 {
                    cnf.clauses.push(std::mem::take(&mut current));
                } else {
                    let idx = v.unsigned_abs() as usize - 1;
                    if let Some(dv) = declared_vars {
                        if idx >= dv {
                            return Err(ParseDimacsError {
                                line: lineno + 1,
                                message: format!("literal {v} exceeds declared {dv} vars"),
                            });
                        }
                    }
                    cnf.num_vars = cnf.num_vars.max(idx + 1);
                    current.push(Lit::new(Var::from_index(idx), v > 0));
                }
            }
        }
        if !current.is_empty() {
            cnf.clauses.push(current);
        }
        Ok(cnf)
    }

    /// Renders the instance as DIMACS CNF text.
    pub fn to_dimacs(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "p cnf {} {}", self.num_vars, self.clauses.len());
        for clause in &self.clauses {
            for &l in clause {
                let v = l.var().index() as i64 + 1;
                let _ = write!(out, "{} ", if l.is_negative() { -v } else { v });
            }
            let _ = writeln!(out, "0");
        }
        out
    }

    /// Loads the instance into a fresh solver.
    pub fn to_solver(&self) -> crate::Solver {
        let mut s = crate::Solver::new();
        for _ in 0..self.num_vars {
            s.new_var();
        }
        for clause in &self.clauses {
            s.add_clause(clause);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SolveResult;

    #[test]
    fn parse_roundtrip() {
        let text = "c comment\np cnf 3 2\n1 -2 0\n2 3 0\n";
        let cnf = Cnf::parse(text).expect("parse");
        assert_eq!(cnf.num_vars, 3);
        assert_eq!(cnf.clauses.len(), 2);
        let re = Cnf::parse(&cnf.to_dimacs()).expect("reparse");
        assert_eq!(re, cnf);
    }

    #[test]
    fn parse_rejects_overflow_literal() {
        assert!(Cnf::parse("p cnf 1 1\n2 0\n").is_err());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Cnf::parse("p cnf 1 1\nxyz 0\n").is_err());
    }

    #[test]
    fn to_solver_solves() {
        let cnf = Cnf::parse("p cnf 2 2\n1 2 0\n-1 0\n").expect("parse");
        let mut s = cnf.to_solver();
        assert_eq!(s.solve(), SolveResult::Sat);
        let cnf2 = Cnf::parse("p cnf 1 2\n1 0\n-1 0\n").expect("parse");
        assert_eq!(cnf2.to_solver().solve(), SolveResult::Unsat);
    }
}
