//! The [`CnfSink`] abstraction: anything clauses can be emitted into.
//!
//! The EMM constraint generator (crate `emm-core`) is written against this
//! trait so the same code can target a live [`Solver`](crate::Solver), a
//! counting sink (for the paper's constraint-size formulas), or a CNF dump.
//!
//! The paper's "hybrid representation" distinguishes constraints added as
//! *CNF clauses* from those added as *2-input gates* (Section 3). A CNF-based
//! backend encodes gates with Tseitin clauses, but the distinction is kept in
//! the interface ([`CnfSink::add_and_gate`]) so sizes can be accounted the
//! way the paper reports them.

use crate::clause::ClauseId;
use crate::lit::{Lit, Var};
use crate::solver::Solver;

/// A sink for fresh variables, CNF clauses, and 2-input AND gates.
pub trait CnfSink {
    /// Creates a fresh variable.
    fn new_var(&mut self) -> Var;

    /// Adds a clause. Returns the clause id when the sink tracks ids.
    fn add_clause(&mut self, lits: &[Lit]) -> Option<ClauseId>;

    /// Adds a 2-input AND gate `out = a & b` and returns `out`.
    ///
    /// The default implementation Tseitin-encodes the gate with three
    /// clauses over a fresh variable; sinks that track the clause/gate split
    /// (or solvers with native gate support) may override it.
    fn add_and_gate(&mut self, a: Lit, b: Lit) -> Lit {
        let out = self.new_var().positive();
        self.add_clause(&[!out, a]);
        self.add_clause(&[!out, b]);
        self.add_clause(&[out, !a, !b]);
        out
    }

    /// Adds an OR gate `out = a | b` (derived from the AND gate by De Morgan).
    fn add_or_gate(&mut self, a: Lit, b: Lit) -> Lit {
        !self.add_and_gate(!a, !b)
    }

    /// Constrains `lit` to be true.
    fn assert_true(&mut self, lit: Lit) {
        self.add_clause(&[lit]);
    }

    /// Attempts to decide whether the formula emitted so far entails
    /// `a ≡ b`, spending at most `max_conflicts` conflicts per direction.
    ///
    /// Returns `Some(true)` when the equivalence is proved, `Some(false)`
    /// when a distinguishing model exists, and `None` when the sink cannot
    /// decide (the default: only solver-backed sinks can). This is the
    /// oracle behind the SAT-sweeping pass of
    /// [`SimplifySink`](crate::SimplifySink).
    fn prove_equiv(&mut self, _a: Lit, _b: Lit, _max_conflicts: u64) -> Option<bool> {
        None
    }

    /// Value of `lit` in the sink's most recent model, when the sink is
    /// solver-backed and the last answer was SAT. Lets the sweeping pass
    /// refine simulation signatures from distinguishing models.
    fn model_lit(&self, _lit: Lit) -> Option<bool> {
        None
    }

    /// Retires a previously added clause, when the sink supports clause
    /// deletion (see [`Solver::retire_clause`] for the soundness
    /// contract — the clause must be redundant). Returns `true` when the
    /// clause was physically removed; the default (non-solver sinks)
    /// retires nothing.
    fn retire_clause(&mut self, _id: ClauseId) -> bool {
        false
    }
}

impl CnfSink for Solver {
    fn new_var(&mut self) -> Var {
        Solver::new_var(self)
    }

    fn add_clause(&mut self, lits: &[Lit]) -> Option<ClauseId> {
        Solver::add_clause(self, lits)
    }

    fn prove_equiv(&mut self, a: Lit, b: Lit, max_conflicts: u64) -> Option<bool> {
        Solver::prove_equiv(self, a, b, max_conflicts)
    }

    fn model_lit(&self, lit: Lit) -> Option<bool> {
        self.model_value(lit)
    }

    fn retire_clause(&mut self, id: ClauseId) -> bool {
        Solver::retire_clause(self, id)
    }
}

/// A sink that only counts, used to verify the paper's closed-form constraint
/// sizes without building a solver instance.
#[derive(Debug, Default, Clone)]
pub struct CountingSink {
    vars: usize,
    clauses: usize,
    gates: usize,
    literals: usize,
}

impl CountingSink {
    /// Creates a counting sink with no variables.
    pub fn new() -> CountingSink {
        CountingSink::default()
    }

    /// Number of variables created.
    pub fn num_vars(&self) -> usize {
        self.vars
    }

    /// Number of clauses added (excluding gate-encoding clauses).
    pub fn num_clauses(&self) -> usize {
        self.clauses
    }

    /// Number of 2-input gates added.
    pub fn num_gates(&self) -> usize {
        self.gates
    }

    /// Total literal occurrences across counted clauses.
    pub fn num_literals(&self) -> usize {
        self.literals
    }
}

impl CnfSink for CountingSink {
    fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.vars);
        self.vars += 1;
        v
    }

    fn add_clause(&mut self, lits: &[Lit]) -> Option<ClauseId> {
        self.clauses += 1;
        self.literals += lits.len();
        None
    }

    fn add_and_gate(&mut self, a: Lit, b: Lit) -> Lit {
        let _ = (a, b);
        self.gates += 1;
        self.new_var().positive()
    }
}

/// A sink that accumulates clauses into vectors (for tests and CNF dumps).
#[derive(Debug, Default, Clone)]
pub struct VecSink {
    vars: usize,
    /// All emitted clauses, gate encodings included.
    pub clauses: Vec<Vec<Lit>>,
}

impl VecSink {
    /// Creates an empty collecting sink.
    pub fn new() -> VecSink {
        VecSink::default()
    }

    /// Creates a collecting sink that already owns `vars` variables.
    pub fn with_vars(vars: usize) -> VecSink {
        VecSink {
            vars,
            clauses: Vec::new(),
        }
    }

    /// Number of variables created.
    pub fn num_vars(&self) -> usize {
        self.vars
    }
}

impl CnfSink for VecSink {
    fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.vars);
        self.vars += 1;
        v
    }

    fn add_clause(&mut self, lits: &[Lit]) -> Option<ClauseId> {
        self.clauses.push(lits.to_vec());
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolveResult;

    #[test]
    fn and_gate_truth_table() {
        for (av, bv) in [(false, false), (false, true), (true, false), (true, true)] {
            let mut s = Solver::new();
            let a = s.new_var().positive();
            let b = s.new_var().positive();
            let out = s.add_and_gate(a, b);
            s.add_clause(&[if av { a } else { !a }]);
            s.add_clause(&[if bv { b } else { !b }]);
            assert_eq!(s.solve(), SolveResult::Sat);
            assert_eq!(s.model_value(out), Some(av && bv), "{av} & {bv}");
        }
    }

    #[test]
    fn or_gate_truth_table() {
        for (av, bv) in [(false, false), (false, true), (true, false), (true, true)] {
            let mut s = Solver::new();
            let a = s.new_var().positive();
            let b = s.new_var().positive();
            let out = s.add_or_gate(a, b);
            s.add_clause(&[if av { a } else { !a }]);
            s.add_clause(&[if bv { b } else { !b }]);
            assert_eq!(s.solve(), SolveResult::Sat);
            assert_eq!(s.model_value(out), Some(av || bv), "{av} | {bv}");
        }
    }

    #[test]
    fn counting_sink_counts() {
        let mut c = CountingSink::new();
        let a = c.new_var().positive();
        let b = c.new_var().positive();
        c.add_clause(&[a, b]);
        let g = c.add_and_gate(a, b);
        c.add_clause(&[g]);
        assert_eq!(c.num_vars(), 3);
        assert_eq!(c.num_clauses(), 2);
        assert_eq!(c.num_gates(), 1);
        assert_eq!(c.num_literals(), 3);
    }

    #[test]
    fn vec_sink_collects() {
        let mut v = VecSink::new();
        let a = v.new_var().positive();
        let out = v.add_and_gate(a, a);
        assert_eq!(v.clauses.len(), 3);
        assert_eq!(v.num_vars(), 2);
        assert!(out.is_positive());
    }
}
