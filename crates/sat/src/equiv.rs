//! Incremental cone-to-CNF equivalence oracle.
//!
//! SAT sweeping — whether over an unrolled formula
//! ([`SimplifySink`](crate::SimplifySink)) or over a design's AIG before
//! encoding (the fraig pass in `emm-aig`) — keeps asking one question:
//! *are these two gate outputs the same function of the shared inputs?*
//! Answering it needs a solver that holds the Tseitin encoding of exactly
//! the cones mentioned so far, grown incrementally so shared substructure
//! is encoded once.
//!
//! [`EquivOracle`] packages that pattern: the caller walks its own graph
//! (the oracle is representation-agnostic; nodes are dense `usize`
//! indices), defines each cone node once via [`EquivOracle::define_input`]
//! / [`EquivOracle::define_and`], and asks [`EquivOracle::prove_equiv`].
//! On a refutation, [`EquivOracle::model_lit`] exposes the distinguishing
//! model so simulation signatures can be refined with a real pattern.
//!
//! ```
//! use emm_sat::EquivOracle;
//!
//! let mut o = EquivOracle::new();
//! let a = o.define_input(0);
//! let b = o.define_input(1);
//! let x = o.define_and(2, a, b);
//! let y = o.define_and(3, a, x); // a ∧ (a ∧ b) — absorbed, equals x
//! assert_eq!(o.prove_equiv(x, y, 64), Some(true));
//! assert_eq!(o.prove_equiv(x, a, 64), Some(false), "a=1,b=0 separates");
//! assert_eq!(o.model_lit(a), Some(true));
//! ```

use crate::govern::ResourceGovernor;
use crate::lit::Lit;
use crate::sink::CnfSink;
use crate::solver::Solver;

/// An incremental SAT context holding the CNF of the cones defined so far.
///
/// See the module docs above. Node indices are caller-chosen dense ids;
/// each node is encoded at most once, so repeated definitions (shared
/// cones, re-walks) are free.
#[derive(Debug, Default)]
pub struct EquivOracle {
    solver: Solver,
    /// Node index -> encoded solver literal.
    lits: Vec<Option<Lit>>,
    /// Lazily created constant-false literal.
    false_lit: Option<Lit>,
    /// Equivalence checks issued.
    checks: u64,
}

impl EquivOracle {
    /// Creates an oracle with an empty CNF.
    pub fn new() -> EquivOracle {
        EquivOracle::default()
    }

    /// Installs a [`ResourceGovernor`] on the oracle's solver: its
    /// deadline, caps, and cancellation token then bound every
    /// [`EquivOracle::prove_equiv`] call (exhaustion answers `None`).
    pub fn set_governor(&mut self, governor: ResourceGovernor) {
        self.solver.set_governor(governor);
    }

    /// The literal `node` was encoded as, if it has been defined.
    pub fn lit(&self, node: usize) -> Option<Lit> {
        self.lits.get(node).copied().flatten()
    }

    /// Defines `node` as a free input (a fresh variable). Memoized.
    pub fn define_input(&mut self, node: usize) -> Lit {
        if let Some(l) = self.lit(node) {
            return l;
        }
        let l = self.solver.new_var().positive();
        self.remember(node, l);
        l
    }

    /// Defines `node` as `a ∧ b` over already-encoded literals (three
    /// Tseitin clauses). Memoized: a second definition returns the first
    /// literal without re-encoding.
    pub fn define_and(&mut self, node: usize, a: Lit, b: Lit) -> Lit {
        if let Some(l) = self.lit(node) {
            return l;
        }
        let l = self.solver.add_and_gate(a, b);
        self.remember(node, l);
        l
    }

    /// Defines `node` as the constant-false literal. Memoized like the
    /// other definitions; all constant nodes share one solver variable.
    pub fn define_const(&mut self, node: usize) -> Lit {
        if let Some(l) = self.lit(node) {
            return l;
        }
        let f = self.false_lit();
        self.remember(node, f);
        f
    }

    /// A literal constrained false (for cones mentioning the constant).
    pub fn false_lit(&mut self) -> Lit {
        if let Some(f) = self.false_lit {
            return f;
        }
        let v = self.solver.new_var();
        self.solver.add_clause(&[v.negative()]);
        self.false_lit = Some(v.positive());
        v.positive()
    }

    /// Attempts to decide `a ≡ b` over the cones encoded so far, spending
    /// at most `max_conflicts` conflicts per implication direction.
    ///
    /// `Some(true)`: equivalent for every input assignment. `Some(false)`:
    /// a distinguishing model exists (readable via
    /// [`EquivOracle::model_lit`]). `None`: budget exhausted.
    pub fn prove_equiv(&mut self, a: Lit, b: Lit, max_conflicts: u64) -> Option<bool> {
        self.checks += 1;
        self.solver.prove_equiv(a, b, max_conflicts)
    }

    /// Value of `lit` in the distinguishing model of the most recent
    /// `Some(false)` answer. `None` for variables the model left
    /// unassigned or after a proved/unknown answer.
    pub fn model_lit(&self, lit: Lit) -> Option<bool> {
        self.solver.model_value(lit)
    }

    /// Equivalence checks issued so far.
    pub fn num_checks(&self) -> u64 {
        self.checks
    }

    /// Variables in the oracle's CNF (encoded cone size indicator).
    pub fn num_vars(&self) -> usize {
        self.solver.num_vars()
    }

    fn remember(&mut self, node: usize, l: Lit) {
        if self.lits.len() <= node {
            self.lits.resize(node + 1, None);
        }
        self.lits[node] = Some(l);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn definitions_are_memoized() {
        let mut o = EquivOracle::new();
        let a = o.define_input(0);
        assert_eq!(o.define_input(0), a);
        let b = o.define_input(1);
        let g = o.define_and(2, a, b);
        let vars_after = o.num_vars();
        assert_eq!(o.define_and(2, a, b), g);
        assert_eq!(o.num_vars(), vars_after, "no re-encoding");
        assert_eq!(o.lit(2), Some(g));
        assert_eq!(o.lit(7), None);
    }

    #[test]
    fn proves_structural_and_absorbed_equivalences() {
        let mut o = EquivOracle::new();
        let a = o.define_input(0);
        let b = o.define_input(1);
        let x = o.define_and(2, a, b);
        let y = o.define_and(3, b, a);
        let z = o.define_and(4, a, x);
        assert_eq!(o.prove_equiv(x, y, 64), Some(true));
        assert_eq!(o.prove_equiv(x, z, 64), Some(true));
        assert_eq!(o.prove_equiv(x, !y, 64), Some(false));
        assert_eq!(o.num_checks(), 3);
    }

    #[test]
    fn refutation_exposes_distinguishing_model() {
        let mut o = EquivOracle::new();
        let a = o.define_input(0);
        let b = o.define_input(1);
        let x = o.define_and(2, a, b);
        assert_eq!(o.prove_equiv(x, a, 64), Some(false));
        // The model must set a=1, b=0 (the only separating assignment).
        assert_eq!(o.model_lit(a), Some(true));
        assert_eq!(o.model_lit(b), Some(false));
        assert_eq!(o.model_lit(x), Some(false));
    }

    #[test]
    fn false_lit_is_constant_and_shared() {
        let mut o = EquivOracle::new();
        let f = o.false_lit();
        assert_eq!(o.false_lit(), f);
        let a = o.define_input(0);
        let g = o.define_and(1, a, f);
        assert_eq!(o.prove_equiv(g, f, 64), Some(true), "a ∧ false ≡ false");
        assert_eq!(o.prove_equiv(a, f, 64), Some(false));
    }
}
