//! Pipeline-wide resource governance: deadlines, work caps, a memory
//! ceiling, and cooperative cancellation.
//!
//! [`Budget`](crate::Budget) limits a *single solve call*; the
//! [`ResourceGovernor`] governs the *whole verification pipeline*. One
//! governor is threaded from `BmcOptions` through the reduction passes
//! (rewrite, fraig), the simplifying sink's SAT sweeper, the EMM
//! constraint encoder, and both incremental solvers, so a job-level
//! deadline or a dispatcher's cancellation request reaches every loop
//! that can run long. The contract at every poll point is *graceful
//! degradation*: a tripped governor makes the pass stop early and
//! return its best-so-far result with honest stats, and makes the
//! solver return `Unknown` with a level-0-clean trail — never a wrong
//! answer, never a corrupted state.
//!
//! Cloning a governor is cheap and shares the cancellation flag (and
//! the fault-injection counter): a dispatcher keeps one clone and calls
//! [`ResourceGovernor::cancel`]; every pipeline stage holding another
//! clone observes the flag at its next poll.
//!
//! For parallel dispatch, [`ResourceGovernor::fork`] derives a *child*
//! governor with the same limits but private cancellation and
//! fault-counter state: each concurrent job gets one fork, so a fault
//! armed with [`ResourceGovernor::with_fault`] trips at the same event
//! count inside every job regardless of worker count or scheduling
//! order — the determinism contract the work-stealing pool relies on.
//! A fork still *observes* its ancestors' cancellation (cancelling the
//! parent stops every job), but cancelling a fork never propagates
//! upward, so one exhausted job cannot take its siblings down.
//!
//! The module also hosts the deterministic **fault injector** used by
//! `crates/bmc/tests/fault_injection.rs`: a governor can be armed to
//! trip cancellation after the Nth occurrence of a named pipeline event
//! ([`FaultSite`]), which lets tests drive exhaustion into every poll
//! point at exact, reproducible moments.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a pipeline stage stopped without an answer.
///
/// Carried by `BmcVerdict::Unknown` (crate `emm-bmc`) and by
/// [`Solver::exhaustion_reason`](crate::Solver::exhaustion_reason)
/// after a [`SolveResult::Unknown`](crate::SolveResult::Unknown).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExhaustionReason {
    /// A wall-clock deadline passed (per-call [`Budget`](crate::Budget)
    /// deadline or the governor's).
    Deadline,
    /// The conflict cap was reached (per-call or governor-wide).
    ConflictLimit,
    /// The governor's pipeline-wide propagation cap was reached.
    PropagationLimit,
    /// The solver's accounted bytes (clause arena + watcher lists)
    /// exceeded the governor's memory ceiling.
    MemoryLimit,
    /// The shared cancellation token was set.
    Cancelled,
}

impl ExhaustionReason {
    /// Stable lower-case name, used by the bench JSON rows.
    pub fn as_str(self) -> &'static str {
        match self {
            ExhaustionReason::Deadline => "deadline",
            ExhaustionReason::ConflictLimit => "conflict_limit",
            ExhaustionReason::PropagationLimit => "propagation_limit",
            ExhaustionReason::MemoryLimit => "memory_limit",
            ExhaustionReason::Cancelled => "cancelled",
        }
    }
}

/// A named pipeline event the fault injector can count. Each site is a
/// real poll/accounting point in the pipeline; arming a governor with
/// [`ResourceGovernor::with_fault`] trips cancellation when the Nth
/// occurrence is reported via [`ResourceGovernor::note`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A CDCL conflict (solver search loop).
    Conflict,
    /// An original clause physically retired (`Solver::retire_clause`).
    RetiredClause,
    /// A fraig SAT equivalence check issued.
    FraigCheck,
    /// A fraig merge committed.
    FraigMerge,
    /// A sweep SAT equivalence check issued by the simplifying sink.
    SweepCheck,
    /// An EMM address comparator encoded.
    EmmComparator,
    /// A rewrite fixpoint iteration completed.
    RewriteIteration,
    /// A BMC time frame unrolled.
    Frame,
    /// A clause vivified by the inprocessing loop
    /// (`Solver::inprocess`), noted once per clause examined.
    Vivify,
    /// A subsumption/self-subsumption candidate clause examined by the
    /// inprocessing loop.
    Subsume,
    /// A failed-literal probe completed by the inprocessing loop.
    Probe,
}

/// State shared between every clone of a governor.
#[derive(Debug, Default)]
struct Shared {
    cancel: AtomicBool,
    fault_hits: AtomicU64,
}

/// Pipeline-wide resource limits plus a shared cooperative cancellation
/// token. See the [module docs](self) for how it is threaded through
/// the stack.
///
/// The caps are plain fields copied on clone; the cancellation flag and
/// the fault counter live behind an `Arc`, so all clones trip together.
///
/// # Examples
///
/// ```
/// use emm_sat::{ResourceGovernor, ExhaustionReason};
///
/// let gov = ResourceGovernor::unlimited();
/// let handle = gov.clone(); // a dispatcher keeps this
/// assert_eq!(gov.poll(), None);
/// handle.cancel();
/// assert_eq!(gov.poll(), Some(ExhaustionReason::Cancelled));
/// gov.reset_cancellation();
/// assert_eq!(gov.poll(), None);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ResourceGovernor {
    deadline: Option<Instant>,
    max_conflicts: Option<u64>,
    max_propagations: Option<u64>,
    memory_limit: Option<usize>,
    fault: Option<(FaultSite, u64)>,
    shared: Arc<Shared>,
    /// Ancestors' shared state, read-only: a fork observes their
    /// cancellation but never writes to it. Empty for root governors.
    upstream: Vec<Arc<Shared>>,
}

impl ResourceGovernor {
    /// A governor with no limits (the default): polls never trip unless
    /// [`ResourceGovernor::cancel`] is called.
    pub fn unlimited() -> ResourceGovernor {
        ResourceGovernor::default()
    }

    /// Returns a copy with the given wall-clock deadline. If a deadline
    /// is already set the earlier one wins.
    pub fn with_deadline(mut self, deadline: Instant) -> ResourceGovernor {
        self.deadline = Some(match self.deadline {
            None => deadline,
            Some(d) => d.min(deadline),
        });
        self
    }

    /// Returns a copy whose deadline is `d` from now (earlier-wins, as
    /// [`ResourceGovernor::with_deadline`]).
    pub fn with_wall_clock(self, d: Duration) -> ResourceGovernor {
        self.with_deadline(Instant::now() + d)
    }

    /// Returns a copy capping total solver conflicts (counted over the
    /// solver's lifetime, not per call).
    pub fn with_max_conflicts(mut self, n: u64) -> ResourceGovernor {
        self.max_conflicts = Some(n);
        self
    }

    /// Returns a copy capping total solver propagations (lifetime).
    pub fn with_max_propagations(mut self, n: u64) -> ResourceGovernor {
        self.max_propagations = Some(n);
        self
    }

    /// Returns a copy with a memory ceiling in bytes, compared against
    /// [`Solver::memory_bytes`](crate::Solver::memory_bytes) (clause
    /// arena + watcher lists) at GC points and periodically in search.
    pub fn with_memory_limit(mut self, bytes: usize) -> ResourceGovernor {
        self.memory_limit = Some(bytes);
        self
    }

    /// Arms the deterministic fault injector: the `n`-th report of
    /// `site` through [`ResourceGovernor::note`] sets the cancellation
    /// flag. `n` counts from 1; `n == 0` trips on the first report.
    pub fn with_fault(mut self, site: FaultSite, n: u64) -> ResourceGovernor {
        self.fault = Some((site, n.max(1)));
        self
    }

    /// The governor's wall-clock deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The pipeline-wide conflict cap, if any.
    pub fn max_conflicts(&self) -> Option<u64> {
        self.max_conflicts
    }

    /// The pipeline-wide propagation cap, if any.
    pub fn max_propagations(&self) -> Option<u64> {
        self.max_propagations
    }

    /// The memory ceiling in bytes, if any.
    pub fn memory_limit(&self) -> Option<usize> {
        self.memory_limit
    }

    /// Derives a child governor for one parallel job: same limits and
    /// fault arming, but a *fresh* cancellation flag and fault counter.
    ///
    /// Unlike [`Clone`], which shares state so all clones trip
    /// together, a fork trips independently — N forked jobs each see
    /// the armed fault at the same local event count, which keeps
    /// fault-injection runs bit-identical across worker counts. The
    /// fork still observes every ancestor's cancellation through its
    /// own [`ResourceGovernor::poll`] /
    /// [`ResourceGovernor::is_cancelled`], so cancelling the parent
    /// stops all jobs; cancelling the fork affects only the fork.
    pub fn fork(&self) -> ResourceGovernor {
        let mut upstream = self.upstream.clone();
        upstream.push(Arc::clone(&self.shared));
        ResourceGovernor {
            deadline: self.deadline,
            max_conflicts: self.max_conflicts,
            max_propagations: self.max_propagations,
            memory_limit: self.memory_limit,
            fault: self.fault,
            shared: Arc::new(Shared::default()),
            upstream,
        }
    }

    /// Returns a copy with the fault injector disarmed (limits and
    /// shared cancellation state are kept). Used where a parallel pass
    /// replays fault accounting centrally and must keep the per-job
    /// governors from double-counting the same events.
    pub fn disarmed(mut self) -> ResourceGovernor {
        self.fault = None;
        self
    }

    /// Sets the shared cancellation flag. Every clone of this governor
    /// observes it at its next poll; polling loops return best-so-far
    /// results and the solver returns `Unknown`.
    pub fn cancel(&self) {
        self.shared.cancel.store(true, Ordering::Release);
    }

    /// Whether the shared cancellation flag is set — the governor's own
    /// or, for a [`ResourceGovernor::fork`], any ancestor's.
    pub fn is_cancelled(&self) -> bool {
        self.shared.cancel.load(Ordering::Acquire)
            || self
                .upstream
                .iter()
                .any(|s| s.cancel.load(Ordering::Acquire))
    }

    /// Clears the shared cancellation flag (and the fault-injection hit
    /// counter), making the pipeline resumable after a cancellation.
    pub fn reset_cancellation(&self) {
        self.shared.cancel.store(false, Ordering::Release);
        self.shared.fault_hits.store(0, Ordering::Release);
    }

    /// Reports one occurrence of `site` to the fault injector. A no-op
    /// unless the governor was armed with a matching
    /// [`ResourceGovernor::with_fault`]; on the Nth matching report the
    /// cancellation flag is set.
    #[inline]
    pub fn note(&self, site: FaultSite) {
        if let Some((armed, n)) = self.fault {
            if armed == site && self.shared.fault_hits.fetch_add(1, Ordering::AcqRel) + 1 >= n {
                self.cancel();
            }
        }
    }

    /// The cheap poll: cancellation flag, then deadline. This is what
    /// the pass-level loops (fraig candidates, rewrite iterations,
    /// sweep credits, EMM comparators, frame unrolling) call.
    #[inline]
    pub fn poll(&self) -> Option<ExhaustionReason> {
        if self.is_cancelled() {
            return Some(ExhaustionReason::Cancelled);
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Some(ExhaustionReason::Deadline);
            }
        }
        None
    }

    /// Checks the lifetime work caps against the solver's counters.
    #[inline]
    pub fn check_counters(&self, conflicts: u64, propagations: u64) -> Option<ExhaustionReason> {
        if let Some(max) = self.max_conflicts {
            if conflicts >= max {
                return Some(ExhaustionReason::ConflictLimit);
            }
        }
        if let Some(max) = self.max_propagations {
            if propagations >= max {
                return Some(ExhaustionReason::PropagationLimit);
            }
        }
        None
    }

    /// Checks the memory ceiling against the solver's accounted bytes.
    #[inline]
    pub fn check_memory(&self, bytes: usize) -> Option<ExhaustionReason> {
        match self.memory_limit {
            Some(limit) if bytes > limit => Some(ExhaustionReason::MemoryLimit),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancellation_is_shared_between_clones() {
        let gov = ResourceGovernor::unlimited();
        let clone = gov.clone();
        assert!(!clone.is_cancelled());
        gov.cancel();
        assert_eq!(clone.poll(), Some(ExhaustionReason::Cancelled));
        clone.reset_cancellation();
        assert_eq!(gov.poll(), None);
    }

    #[test]
    fn deadline_earlier_wins() {
        let near = Instant::now() + Duration::from_secs(1);
        let far = near + Duration::from_secs(100);
        assert_eq!(
            ResourceGovernor::unlimited()
                .with_deadline(far)
                .with_deadline(near)
                .deadline(),
            Some(near)
        );
        assert_eq!(
            ResourceGovernor::unlimited()
                .with_deadline(near)
                .with_deadline(far)
                .deadline(),
            Some(near)
        );
    }

    #[test]
    fn expired_deadline_trips_poll() {
        let gov = ResourceGovernor::unlimited().with_wall_clock(Duration::ZERO);
        assert_eq!(gov.poll(), Some(ExhaustionReason::Deadline));
    }

    #[test]
    fn counter_caps_trip_in_order() {
        let gov = ResourceGovernor::unlimited()
            .with_max_conflicts(10)
            .with_max_propagations(100);
        assert_eq!(gov.check_counters(9, 99), None);
        assert_eq!(
            gov.check_counters(10, 0),
            Some(ExhaustionReason::ConflictLimit)
        );
        assert_eq!(
            gov.check_counters(0, 100),
            Some(ExhaustionReason::PropagationLimit)
        );
    }

    #[test]
    fn memory_ceiling_trips_strictly_above() {
        let gov = ResourceGovernor::unlimited().with_memory_limit(1024);
        assert_eq!(gov.check_memory(1024), None);
        assert_eq!(gov.check_memory(1025), Some(ExhaustionReason::MemoryLimit));
    }

    #[test]
    fn fault_injector_trips_on_nth_event() {
        let gov = ResourceGovernor::unlimited().with_fault(FaultSite::Conflict, 3);
        gov.note(FaultSite::FraigMerge); // wrong site: ignored
        gov.note(FaultSite::Conflict);
        gov.note(FaultSite::Conflict);
        assert!(!gov.is_cancelled());
        gov.note(FaultSite::Conflict);
        assert!(gov.is_cancelled());
    }

    #[test]
    fn fault_counter_is_shared_between_clones() {
        let gov = ResourceGovernor::unlimited().with_fault(FaultSite::SweepCheck, 2);
        let clone = gov.clone();
        gov.note(FaultSite::SweepCheck);
        clone.note(FaultSite::SweepCheck);
        assert!(gov.is_cancelled());
    }

    #[test]
    fn fork_has_independent_fault_counter() {
        let parent = ResourceGovernor::unlimited().with_fault(FaultSite::FraigCheck, 2);
        let a = parent.fork();
        let b = parent.fork();
        a.note(FaultSite::FraigCheck);
        b.note(FaultSite::FraigCheck);
        // One hit each: neither fork reached its own threshold, and the
        // parent's counter never moved.
        assert!(!a.is_cancelled());
        assert!(!b.is_cancelled());
        assert!(!parent.is_cancelled());
        a.note(FaultSite::FraigCheck);
        assert!(a.is_cancelled());
        assert!(!b.is_cancelled());
        assert!(!parent.is_cancelled());
    }

    #[test]
    fn fork_observes_ancestor_cancellation() {
        let parent = ResourceGovernor::unlimited();
        let child = parent.fork();
        let grandchild = child.fork();
        assert!(!grandchild.is_cancelled());
        parent.cancel();
        assert_eq!(child.poll(), Some(ExhaustionReason::Cancelled));
        assert_eq!(grandchild.poll(), Some(ExhaustionReason::Cancelled));
    }

    #[test]
    fn fork_cancellation_does_not_propagate_upward() {
        let parent = ResourceGovernor::unlimited();
        let a = parent.fork();
        let b = parent.fork();
        a.cancel();
        assert!(a.is_cancelled());
        assert!(!parent.is_cancelled());
        assert!(!b.is_cancelled());
    }

    #[test]
    fn disarmed_drops_fault_but_keeps_sharing() {
        let gov = ResourceGovernor::unlimited().with_fault(FaultSite::FraigCheck, 1);
        let quiet = gov.clone().disarmed();
        quiet.note(FaultSite::FraigCheck);
        assert!(!quiet.is_cancelled());
        // Shared state survives the disarm: parent cancellation reaches it.
        gov.cancel();
        assert!(quiet.is_cancelled());
    }
}
