//! The inprocessing loop: clause vivification, subsumption +
//! self-subsuming resolution, and failed-literal probing, run *between*
//! solve calls of a long-lived incremental solver.
//!
//! [`Solver::inprocess`] is designed for the incremental BMC lifecycle:
//! the `emm-bmc` engine calls it between bounds (and between k-induction
//! depths), so simplification effort spent once is amortized over every
//! later query on the same solver — the payoff a restart-from-scratch
//! solver can never collect. All three techniques are bounded per call
//! (see [`InprocessConfig`]) and resume where they left off through
//! rotating cursors, so the cost per bound stays flat while coverage
//! still reaches the whole database over the run. On top of the fixed
//! caps, per-call vivification/probing effort is scaled by the number
//! of conflicts the search produced since the previous call
//! ([`InprocessConfig::scale_to_conflicts`], on by default): a bound
//! decided by pure propagation — the common case for the EMM encodings —
//! earns an almost-free round, so inprocessing never costs more than
//! the search work it is trying to save.
//!
//! # Soundness in an incremental solver
//!
//! Every rewrite performed here is a *logical consequence* of the
//! current clause database, with exactly the same retention contract as
//! learned clauses across [`Solver::retire_clause`]: retiring a clause
//! keeps derived consequences, which stays sound because the stack only
//! retires redundant clauses (satisfied group clauses after
//! [`Solver::retire_group`], definitional Tseitin triples of swept-away
//! gates). Three additional rules keep the retirement and activation
//! machinery intact:
//!
//! * **Original clauses are never deleted, only strengthened.** A
//!   strengthening replaces the clause's arena allocation and re-points
//!   the stable clause-id table at the new location, so
//!   `retire_clause`/`retire_group` (and their retirement accounting)
//!   behave identically afterwards. Subsumption may physically delete
//!   *learnt* clauses only.
//! * **Activation-guard literals are frozen.** Guard variables are
//!   never probed, and a group clause `¬g ∨ C` is only vivified under
//!   the assumption `g`, with `¬g` unconditionally kept — the
//!   strengthened clause is still a clause of group `g`. (Self-subsuming
//!   resolution can never remove `¬g` either: that would need a clause
//!   containing `g` positively, which by construction does not exist.)
//! * **Retired clauses are never touched.** The pass walks the
//!   clause-id table and skips invalidated entries.
//!
//! # Resource governance
//!
//! The pass honors the solver's [`ResourceGovernor`](crate::ResourceGovernor)
//! and the [`Budget`](crate::Budget) deadline (min-combined by the caller
//! via `Budget::with_earlier_deadline`): it polls once per clause/probe
//! *batch* — not per literal — and reports every examined clause or probe
//! to the fault injector ([`FaultSite::Vivify`], [`FaultSite::Subsume`],
//! [`FaultSite::Probe`]). A trip stops the pass at the next batch
//! boundary with the trail clean at level 0 and the solver fully usable;
//! a governor that is already tripped on entry makes the whole call a
//! no-op. Work already performed before a trip is kept — it is all
//! sound — and `SolverStats::inprocess_rounds` counts only passes that
//! ran to completion.

use std::time::Instant;

use crate::clause::{ClauseId, ClauseRef};
use crate::govern::{ExhaustionReason, FaultSite};
use crate::lit::{Lit, Var};
use crate::solver::Solver;

/// Knobs of the inprocessing loop ([`Solver::inprocess`]), nested in
/// [`SolverConfig::inprocess`](crate::SolverConfig::inprocess).
///
/// The defaults enable every technique with conservative per-call
/// effort caps sized for the between-bounds cadence of the incremental
/// BMC loop: each call touches at most a bounded slice of the database
/// and the rotating cursors spread successive calls across all of it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InprocessConfig {
    /// Master switch; `false` makes [`Solver::inprocess`] a no-op.
    pub enabled: bool,
    /// Run clause vivification.
    pub vivify: bool,
    /// Run subsumption + self-subsuming resolution.
    pub subsume: bool,
    /// Run failed-literal probing.
    pub probe: bool,
    /// Maximum original clauses vivified per call.
    pub vivify_clause_budget: usize,
    /// Maximum clauses (originals + learnts) entering one subsumption
    /// sweep.
    pub subsume_clause_budget: usize,
    /// Maximum variables probed per call (both phases each).
    pub probe_var_budget: usize,
    /// Scale per-call vivification/probing effort by the number of
    /// conflicts the search produced since the previous call (capped by
    /// the budgets above). This is the amortization contract of the
    /// between-bounds cadence: a bound the solver decided by pure
    /// propagation earns no inprocessing effort — rewriting a database
    /// the search never struggles with cannot pay for itself — while a
    /// conflict-heavy bound earns a full round. Disable for
    /// deterministic full-budget passes regardless of search history
    /// (the unit-test configuration).
    pub scale_to_conflicts: bool,
}

impl Default for InprocessConfig {
    fn default() -> InprocessConfig {
        InprocessConfig {
            enabled: true,
            vivify: true,
            subsume: true,
            probe: true,
            vivify_clause_budget: 512,
            subsume_clause_budget: 4096,
            probe_var_budget: 256,
            scale_to_conflicts: true,
        }
    }
}

impl InprocessConfig {
    /// A configuration with inprocessing fully off.
    pub fn disabled() -> InprocessConfig {
        InprocessConfig {
            enabled: false,
            ..InprocessConfig::default()
        }
    }

    /// Sets the master switch.
    pub fn enabled(mut self, on: bool) -> InprocessConfig {
        self.enabled = on;
        self
    }

    /// Enables or disables clause vivification.
    pub fn vivify(mut self, on: bool) -> InprocessConfig {
        self.vivify = on;
        self
    }

    /// Enables or disables subsumption/self-subsumption.
    pub fn subsume(mut self, on: bool) -> InprocessConfig {
        self.subsume = on;
        self
    }

    /// Enables or disables failed-literal probing.
    pub fn probe(mut self, on: bool) -> InprocessConfig {
        self.probe = on;
        self
    }

    /// Caps the original clauses vivified per call.
    pub fn vivify_clause_budget(mut self, n: usize) -> InprocessConfig {
        self.vivify_clause_budget = n;
        self
    }

    /// Caps the clauses entering one subsumption sweep.
    pub fn subsume_clause_budget(mut self, n: usize) -> InprocessConfig {
        self.subsume_clause_budget = n;
        self
    }

    /// Caps the variables probed per call.
    pub fn probe_var_budget(mut self, n: usize) -> InprocessConfig {
        self.probe_var_budget = n;
        self
    }

    /// Enables or disables conflict-credit scaling of the per-call
    /// vivification/probing effort (see the field docs).
    pub fn scale_to_conflicts(mut self, on: bool) -> InprocessConfig {
        self.scale_to_conflicts = on;
        self
    }
}

/// Governor/deadline poll cadence: once per this many vivified clauses
/// or probes (subsumption polls at the same cadence per subsumer).
const POLL_BATCH: usize = 16;

/// One subsumption candidate, mirrored out of the arena so the sweep
/// can run subset checks without re-borrowing the database.
struct SubsumeCand {
    cref: ClauseRef,
    lits: Vec<Lit>,
    /// Variable-occurrence signature (var-based so a single flipped
    /// literal — the self-subsumption case — still passes the filter).
    sig: u64,
    /// `Some(id)` for originals (strengthenings re-register this id);
    /// `None` for learnts.
    id: Option<ClauseId>,
    /// Index into `Solver::learnts` for learnt candidates.
    learnt_pos: Option<usize>,
    deleted: bool,
}

fn var_sig(lits: &[Lit]) -> u64 {
    lits.iter()
        .fold(0u64, |s, l| s | 1u64 << (l.var().index() % 64))
}

impl Solver {
    /// Runs one bounded inprocessing pass: vivification, subsumption +
    /// self-subsuming resolution, failed-literal probing (each
    /// individually switchable via [`InprocessConfig`]).
    ///
    /// Returns `None` when the pass completed (or was disabled) and
    /// `Some(reason)` when the governor or the budget deadline stopped
    /// it early; either way the solver is left at decision level 0 and
    /// fully usable, with all work already done kept (it is all sound).
    /// See the module docs in `inprocess.rs` for the soundness contract.
    ///
    /// The pass is a no-op under [`SolverConfig::proof_tracing`](crate::SolverConfig::proof_tracing):
    /// strengthened clauses would need tracer derivations the rewrite
    /// does not record, so refutation cores stay exact by simply not
    /// rewriting traced databases.
    ///
    /// # Examples
    ///
    /// ```
    /// use emm_sat::{InprocessConfig, SolveResult, Solver, SolverConfig};
    /// // A fresh solver has earned no conflict credit yet; disable the
    /// // scaling to force a full-effort round.
    /// let mut s = Solver::with_config(SolverConfig::default().inprocess(
    ///     InprocessConfig::default().scale_to_conflicts(false),
    /// ));
    /// let a = s.new_var().positive();
    /// let b = s.new_var().positive();
    /// let c = s.new_var().positive();
    /// s.add_clause(&[a, b]);
    /// let wide = s.add_clause(&[a, b, c]).unwrap();
    /// assert_eq!(s.inprocess(), None);
    /// // (a ∨ b) strengthens (a ∨ b ∨ c) by vivification; the clause
    /// // keeps its id and stays retirable.
    /// assert_eq!(s.stats().vivified_literals, 1);
    /// assert!(s.retire_clause(wide));
    /// assert_eq!(s.solve(), SolveResult::Sat);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if called while the solver is not at decision level zero.
    pub fn inprocess(&mut self) -> Option<ExhaustionReason> {
        assert_eq!(self.decision_level(), 0, "inprocess at level 0 only");
        if !self.config.inprocess.enabled || !self.ok || self.tracer.is_some() {
            return None;
        }
        // An already-tripped governor (or an already-passed deadline)
        // makes the whole call a strict no-op.
        if let Some(reason) = self.inprocess_stop() {
            return Some(reason);
        }
        // Start from a fixpoint of level-0 propagation.
        if self.propagate().is_some() {
            self.ok = false;
            return None;
        }

        let frozen = self.frozen_vars();
        let config = self.config.inprocess.clone();
        // Conflict credit: a call only gets to spend as much
        // vivification/probing effort as the search "earned" in
        // conflicts since the previous call. On propagation-only
        // workloads (most EMM bounds) this makes the round nearly free;
        // on conflict-heavy ones the configured caps apply in full.
        let credit = (self.stats.conflicts - self.last_inprocess_conflicts) as usize;
        self.last_inprocess_conflicts = self.stats.conflicts;
        let (vivify_budget, probe_budget) = if config.scale_to_conflicts {
            (
                config.vivify_clause_budget.min(credit),
                config.probe_var_budget.min(credit),
            )
        } else {
            (config.vivify_clause_budget, config.probe_var_budget)
        };
        let mut stopped = None;
        if config.vivify && stopped.is_none() && self.ok {
            stopped = self.vivify_pass(&frozen, vivify_budget);
        }
        if config.subsume && stopped.is_none() && self.ok {
            stopped = self.subsume_pass();
        }
        if config.probe && stopped.is_none() && self.ok {
            stopped = self.probe_pass(&frozen, probe_budget);
        }
        if stopped.is_none() && self.ok {
            self.stats.inprocess_rounds += 1;
        }
        // Reallocated and deleted clauses waste arena words; compact on
        // the same threshold the retirement path uses.
        if self.db.wasted() * 3 > self.db.capacity_words() {
            self.collect_garbage();
        }
        stopped
    }

    /// Cancellation, lifetime caps, and the per-call budget deadline —
    /// the stop condition checked once per batch inside every pass.
    fn inprocess_stop(&self) -> Option<ExhaustionReason> {
        if let Some(reason) = self.governor.poll() {
            return Some(reason);
        }
        if let Some(reason) = self
            .governor
            .check_counters(self.stats.conflicts, self.stats.propagations)
        {
            return Some(reason);
        }
        if let Some(deadline) = self.budget.deadline {
            if Instant::now() >= deadline {
                return Some(ExhaustionReason::Deadline);
            }
        }
        None
    }

    /// Activation-guard variables: frozen for every technique.
    fn frozen_vars(&self) -> Vec<bool> {
        let mut frozen = vec![false; self.num_vars()];
        for &v in self.groups.keys() {
            frozen[v.index()] = true;
        }
        frozen
    }

    // ------------------------------------------------------------------
    // Vivification
    // ------------------------------------------------------------------

    /// Vivifies up to `budget` live original clauses, resuming at the
    /// rotating id cursor.
    fn vivify_pass(&mut self, frozen: &[bool], budget: usize) -> Option<ExhaustionReason> {
        let total = self.id_refs.len();
        if budget == 0 || total == 0 {
            return None;
        }
        let mut examined = 0usize;
        let mut since_poll = 0usize;
        let start = self.vivify_cursor % total;
        for step in 0..total {
            if examined >= budget {
                break;
            }
            let idx = (start + step) % total;
            self.vivify_cursor = idx + 1;
            let cref = self.id_refs[idx];
            // Retired (or never-allocated) ids are skipped untouched.
            if !cref.is_valid() || self.db.len(cref) < 3 {
                continue;
            }
            examined += 1;
            since_poll += 1;
            self.governor.note(FaultSite::Vivify);
            if since_poll >= POLL_BATCH {
                since_poll = 0;
                if let Some(reason) = self.inprocess_stop() {
                    return Some(reason);
                }
            }
            self.vivify_one(ClauseId(idx as u32), cref, frozen);
            if !self.ok {
                return None;
            }
        }
        self.inprocess_stop()
    }

    /// Vivifies one original clause: assume the negation of each literal
    /// in turn and propagate; a literal found implied (true) or a
    /// conflict proves a shortened clause, a literal found false is
    /// redundant and dropped. Frozen (activation-guard) literals are
    /// kept unconditionally and their guards assumed first, so a group
    /// clause is only strengthened *under its guard assumption*.
    ///
    /// The propagation runs with the clause itself still attached; that
    /// is sound (the strengthened clause is entailed by the database and
    /// subsumes the original, so the swap preserves equivalence) and the
    /// one circular case — the clause propagating its own last literal —
    /// only ever reproduces the full clause, a no-op.
    fn vivify_one(&mut self, id: ClauseId, cref: ClauseRef, frozen: &[bool]) {
        debug_assert_eq!(self.decision_level(), 0);
        debug_assert!(!self.db.is_learnt(cref));
        let lits: Vec<Lit> = self.db.lits(cref).to_vec();
        // Satisfied at level 0: dead weight pending retirement by its
        // owner; leave untouched.
        if lits.iter().any(|&l| self.lit_value(l).is_true()) {
            return;
        }
        let (guards, body): (Vec<Lit>, Vec<Lit>) =
            lits.iter().partition(|l| frozen[l.var().index()]);
        if body.len() < 2 {
            return;
        }
        // Assume each guard's activation (¬guard-literal) first.
        for &gl in &guards {
            if !self.lit_value(gl).is_undef() {
                self.cancel_until(0);
                return;
            }
            self.trail_lim.push(self.trail.len());
            self.enqueue(!gl, ClauseRef::INVALID);
            if self.propagate().is_some() {
                // The activation itself conflicts; leave the clause to
                // the search (which will derive the unit properly).
                self.cancel_until(0);
                return;
            }
        }
        let mut kept: Vec<Lit> = guards;
        let full = kept.len() + body.len();
        for &l in &body {
            let v = self.lit_value(l);
            if v.is_true() {
                // DB ∧ ¬kept ⊢ l: the clause `kept ∨ l` is entailed.
                kept.push(l);
                break;
            }
            if v.is_false() {
                // DB ∧ ¬kept ⊢ ¬l: `l` is redundant in this clause.
                continue;
            }
            self.trail_lim.push(self.trail.len());
            self.enqueue(!l, ClauseRef::INVALID);
            if self.propagate().is_some() {
                // DB ∧ ¬kept ∧ ¬l ⊢ ⊥: the clause `kept ∨ l` is entailed.
                kept.push(l);
                break;
            }
            kept.push(l);
        }
        self.cancel_until(0);
        if kept.len() >= full {
            return;
        }
        let removed = (full - kept.len()) as u64;
        self.stats.vivified_clauses += 1;
        self.stats.vivified_literals += removed;
        match kept.len() {
            0 => {
                // Every literal was false at level 0: the database is
                // unsatisfiable outright.
                self.ok = false;
            }
            1 => {
                // Shrinking an original to a unit would break the
                // retirement accounting of its owner; assert the unit as
                // its own (redundant-making) clause and leave the
                // original in place, now level-0 satisfied.
                self.add_clause(&[kept[0]]);
            }
            _ => {
                self.replace_original(id, cref, &kept);
            }
        }
    }

    /// Replaces an original clause's allocation with a strengthened
    /// literal set, re-pointing the stable clause-id table so retirement
    /// by id keeps working — "replayed through the id table".
    fn replace_original(&mut self, id: ClauseId, cref: ClauseRef, new_lits: &[Lit]) {
        debug_assert!(new_lits.len() >= 2);
        self.detach(cref);
        self.db.delete(cref);
        let new_cref = self.db.alloc(new_lits, false, id);
        self.register_ref(id, new_cref);
        self.attach(new_cref);
    }

    // ------------------------------------------------------------------
    // Subsumption + self-subsuming resolution
    // ------------------------------------------------------------------

    /// One bounded subsumption sweep over live originals and learnts.
    /// `C ⊆ D` deletes `D` when `D` is learnt (originals stay, they are
    /// merely redundant); `C \ {l} ⊆ D ∧ ¬l ∈ D` strengthens `D` by
    /// removing `¬l` (self-subsuming resolution), originals included —
    /// strengthening preserves the clause id.
    fn subsume_pass(&mut self) -> Option<ExhaustionReason> {
        let cap = self.config.inprocess.subsume_clause_budget;
        if cap == 0 {
            return None;
        }
        let mut cands: Vec<SubsumeCand> = Vec::new();
        for idx in 0..self.id_refs.len() {
            if cands.len() >= cap {
                break;
            }
            let cref = self.id_refs[idx];
            if !cref.is_valid() || self.db.len(cref) < 2 {
                continue;
            }
            let lits: Vec<Lit> = self.db.lits(cref).to_vec();
            if lits.iter().any(|&l| self.lit_value(l).is_true()) {
                continue;
            }
            cands.push(SubsumeCand {
                cref,
                sig: var_sig(&lits),
                lits,
                id: Some(ClauseId(idx as u32)),
                learnt_pos: None,
                deleted: false,
            });
        }
        for pos in 0..self.learnts.len() {
            if cands.len() >= cap {
                break;
            }
            let cref = self.learnts[pos];
            let lits: Vec<Lit> = self.db.lits(cref).to_vec();
            if lits.iter().any(|&l| self.lit_value(l).is_true()) {
                continue;
            }
            cands.push(SubsumeCand {
                cref,
                sig: var_sig(&lits),
                lits,
                id: None,
                learnt_pos: Some(pos),
                deleted: false,
            });
        }
        if cands.len() < 2 {
            return None;
        }

        // Variable-occurrence lists over the candidate set.
        let mut occ: Vec<Vec<u32>> = vec![Vec::new(); self.num_vars()];
        for (ci, cand) in cands.iter().enumerate() {
            for &l in &cand.lits {
                occ[l.var().index()].push(ci as u32);
            }
        }
        // Shortest subsumers first: they prune the most.
        let mut order: Vec<u32> = (0..cands.len() as u32).collect();
        order.sort_by_key(|&ci| cands[ci as usize].lits.len());

        let result = self.subsume_sweep(&mut cands, &occ, &order);
        // Compact the learnt list past any deletions.
        let db = &self.db;
        self.learnts.retain(|&c| !db.is_deleted(c));
        result
    }

    fn subsume_sweep(
        &mut self,
        cands: &mut [SubsumeCand],
        occ: &[Vec<u32>],
        order: &[u32],
    ) -> Option<ExhaustionReason> {
        let mut since_poll = 0usize;
        for &ci in order {
            let ci = ci as usize;
            if cands[ci].deleted {
                continue;
            }
            since_poll += 1;
            self.governor.note(FaultSite::Subsume);
            if since_poll >= POLL_BATCH {
                since_poll = 0;
                if let Some(reason) = self.inprocess_stop() {
                    return Some(reason);
                }
            }
            // Walk the sparsest occurrence list among C's variables.
            let pivot = cands[ci]
                .lits
                .iter()
                .map(|l| l.var().index())
                .min_by_key(|&v| occ[v].len());
            let Some(pivot) = pivot else { continue };
            for &di in &occ[pivot] {
                let di = di as usize;
                if di == ci || cands[di].deleted {
                    continue;
                }
                if cands[di].lits.len() < cands[ci].lits.len() {
                    continue;
                }
                if cands[ci].sig & !cands[di].sig != 0 {
                    continue;
                }
                let Some(flipped) = subset_with_one_flip(&cands[ci].lits, &cands[di].lits) else {
                    continue;
                };
                match flipped {
                    None => self.subsume_delete(&mut cands[di]),
                    Some(drop_lit) => self.subsume_strengthen(&mut cands[di], drop_lit),
                }
                if !self.ok {
                    return None;
                }
            }
        }
        self.inprocess_stop()
    }

    /// `C` subsumes `D` outright: delete `D` when it is learnt. A
    /// subsumed *original* stays — it is redundant but its owner may
    /// still retire it by id, and physical deletion here would silently
    /// void that retirement.
    fn subsume_delete(&mut self, d: &mut SubsumeCand) {
        let Some(pos) = d.learnt_pos else { return };
        debug_assert!(self.db.is_learnt(d.cref));
        debug_assert_eq!(self.learnts[pos], d.cref);
        self.detach(d.cref);
        self.db.delete(d.cref);
        d.deleted = true;
        self.stats.learned_clauses -= 1;
        self.stats.subsumed_clauses += 1;
        self.stats.subsumed_literals += d.lits.len() as u64;
    }

    /// Self-subsuming resolution: remove `drop_lit` from `D`, keeping
    /// its identity (clause id for originals, learnt-list slot and LBD
    /// bound for learnts).
    fn subsume_strengthen(&mut self, d: &mut SubsumeCand, drop_lit: Lit) {
        // Freshly satisfied at level 0 (a unit derived earlier in this
        // pass): leave it for its owner.
        if d.lits.iter().any(|&l| self.lit_value(l).is_true()) {
            return;
        }
        let new_lits: Vec<Lit> = d.lits.iter().copied().filter(|&l| l != drop_lit).collect();
        debug_assert_eq!(new_lits.len() + 1, d.lits.len());
        self.stats.subsumed_literals += 1;
        if new_lits.len() == 1 {
            // Strengthened to a unit: assert it as its own clause; the
            // old allocation becomes level-0 satisfied (original) or is
            // deleted (learnt).
            if let Some(pos) = d.learnt_pos {
                debug_assert_eq!(self.learnts[pos], d.cref);
                self.detach(d.cref);
                self.db.delete(d.cref);
                d.deleted = true;
                self.stats.learned_clauses -= 1;
            }
            self.add_clause(&[new_lits[0]]);
            return;
        }
        match d.id {
            Some(id) => {
                self.replace_original(id, d.cref, &new_lits);
                d.cref = self.id_ref(id);
            }
            None => {
                let pos = d.learnt_pos.expect("learnt candidates carry their slot");
                let lbd = self.db.lbd(d.cref).min(new_lits.len() as u32);
                let activity = self.db.activity(d.cref);
                self.detach(d.cref);
                self.db.delete(d.cref);
                let new_cref = self.db.alloc(&new_lits, true, ClauseId::UNTRACKED);
                self.db.set_lbd(new_cref, lbd);
                self.db.set_activity(new_cref, activity);
                self.attach(new_cref);
                self.learnts[pos] = new_cref;
                d.cref = new_cref;
            }
        }
        d.lits = new_lits;
        d.sig = var_sig(&d.lits);
    }

    /// Current arena location of an original clause id.
    fn id_ref(&self, id: ClauseId) -> ClauseRef {
        self.id_refs[id.0 as usize]
    }

    // ------------------------------------------------------------------
    // Failed-literal probing
    // ------------------------------------------------------------------

    /// Probes up to `budget` unassigned non-guard variables (both
    /// phases): assume the literal, propagate, and on conflict assert
    /// its negation as a level-0 unit.
    fn probe_pass(&mut self, frozen: &[bool], budget: usize) -> Option<ExhaustionReason> {
        let n = self.num_vars();
        if budget == 0 || n == 0 {
            return None;
        }
        let mut probed = 0usize;
        let mut since_poll = 0usize;
        let start = self.probe_cursor % n;
        for step in 0..n {
            if probed >= budget {
                break;
            }
            let vi = (start + step) % n;
            self.probe_cursor = vi + 1;
            let v = Var::from_index(vi);
            if frozen[vi] || !self.lit_value(v.positive()).is_undef() {
                continue;
            }
            probed += 1;
            since_poll += 1;
            self.governor.note(FaultSite::Probe);
            if since_poll >= POLL_BATCH {
                since_poll = 0;
                if let Some(reason) = self.inprocess_stop() {
                    return Some(reason);
                }
            }
            for phase in [true, false] {
                let l = Lit::new(v, phase);
                // The first phase's failure may have assigned the var.
                if !self.lit_value(l).is_undef() {
                    continue;
                }
                self.trail_lim.push(self.trail.len());
                self.enqueue(l, ClauseRef::INVALID);
                let conflict = self.propagate().is_some();
                self.cancel_until(0);
                self.stats.probed_literals += 1;
                if conflict {
                    self.stats.failed_literals += 1;
                    self.add_clause(&[!l]);
                    if !self.ok {
                        return None;
                    }
                }
            }
        }
        self.inprocess_stop()
    }
}

/// Checks `C ⊆ D` modulo at most one flipped literal. Returns `None`
/// when the relation does not hold, `Some(None)` for plain subsumption,
/// and `Some(Some(d_lit))` when exactly one literal of `C` appears
/// negated in `D` as `d_lit` — the literal self-subsuming resolution
/// removes from `D`.
fn subset_with_one_flip(c: &[Lit], d: &[Lit]) -> Option<Option<Lit>> {
    let mut flipped: Option<Lit> = None;
    'outer: for &cl in c {
        for &dl in d {
            if dl == cl {
                continue 'outer;
            }
            if dl == !cl {
                if flipped.is_some() {
                    return None;
                }
                flipped = Some(dl);
                continue 'outer;
            }
        }
        return None;
    }
    Some(flipped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::govern::ResourceGovernor;
    use crate::solver::{Budget, SolveResult, SolverConfig};
    use std::time::Instant;

    fn vars(s: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| s.new_var().positive()).collect()
    }

    /// A solver whose inprocessing has no effort caps, so unit tests
    /// exercise every technique deterministically.
    fn eager() -> Solver {
        Solver::with_config(
            SolverConfig::default().inprocess(
                InprocessConfig::default()
                    .vivify_clause_budget(usize::MAX)
                    .subsume_clause_budget(usize::MAX)
                    .probe_var_budget(usize::MAX)
                    .scale_to_conflicts(false),
            ),
        )
    }

    #[test]
    fn vivification_strengthens_entailed_clause() {
        let mut s = eager();
        let v = vars(&mut s, 3);
        s.add_clause(&[v[0], v[1]]);
        let wide = s.add_clause(&[v[0], v[1], v[2]]).unwrap();
        assert_eq!(s.inprocess(), None);
        assert_eq!(s.stats().vivified_clauses, 1);
        assert_eq!(s.stats().vivified_literals, 1);
        // The id survived the strengthening: the clause is retirable.
        assert!(s.retire_clause(wide));
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn self_subsumption_strengthens_original_in_place() {
        let mut s = eager();
        let v = vars(&mut s, 3);
        // (a ∨ b) and (a ∨ ¬b ∨ c): resolving removes ¬b from the
        // second clause, leaving (a ∨ c).
        s.add_clause(&[v[0], v[1]]);
        let target = s.add_clause(&[v[0], !v[1], v[2]]).unwrap();
        // Probing would solve the instance by itself; isolate subsumption.
        s.config.inprocess.probe = false;
        s.config.inprocess.vivify = false;
        assert_eq!(s.inprocess(), None);
        assert_eq!(s.stats().subsumed_literals, 1);
        // ¬a now propagates c through the strengthened clause.
        assert_eq!(s.solve_with(&[!v[0]]), SolveResult::Sat);
        assert_eq!(s.model_value(v[2]), Some(true));
        assert!(s.retire_clause(target));
    }

    #[test]
    fn subsumed_original_clause_is_left_retirable() {
        let mut s = eager();
        let v = vars(&mut s, 3);
        s.add_clause(&[v[0], v[1]]);
        let redundant = s.add_clause(&[v[0], v[1], v[2]]).unwrap();
        s.config.inprocess.vivify = false;
        s.config.inprocess.probe = false;
        assert_eq!(s.inprocess(), None);
        // Plain subsumption never deletes originals.
        assert_eq!(s.stats().subsumed_clauses, 0);
        assert!(s.retire_clause(redundant), "original stayed retirable");
    }

    #[test]
    fn probing_derives_failed_literal_units() {
        let mut s = eager();
        let v = vars(&mut s, 3);
        // a implies both b and ¬b: probing a must fail and assert ¬a.
        s.add_clause(&[!v[0], v[1]]);
        s.add_clause(&[!v[0], !v[1]]);
        s.add_clause(&[v[0], v[2]]);
        // Self-subsumption would derive the same unit first; isolate
        // the probing technique.
        s.config.inprocess.vivify = false;
        s.config.inprocess.subsume = false;
        assert_eq!(s.inprocess(), None);
        assert!(s.stats().failed_literals >= 1);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(v[0]), Some(false));
        assert_eq!(s.model_value(v[2]), Some(true));
    }

    #[test]
    fn group_guard_clauses_only_strengthen_under_their_guard() {
        let mut s = eager();
        let v = vars(&mut s, 3);
        let g = s.new_activation_group();
        // Group clauses ¬g ∨ a ∨ b (side) and ¬g ∨ a ∨ b ∨ c (wide):
        // under the guard assumption, c is dropped from the wide
        // clause; ¬g must survive.
        s.add_clause_in_group(g, &[v[0], v[1]]).unwrap();
        let gc = s.add_clause_in_group(g, &[v[0], v[1], v[2]]).unwrap();
        assert_eq!(s.inprocess(), None);
        assert_eq!(s.stats().vivified_clauses, 1);
        let cref = s.id_refs[gc.0 as usize];
        let lits: Vec<Lit> = s.db.lits(cref).to_vec();
        assert!(lits.contains(&!g), "guard literal survives strengthening");
        assert_eq!(lits.len(), 3, "exactly the entailed literal dropped");
        // The guard variable was never probed into a level-0 value.
        assert!(s.lit_value(g).is_undef());
        // Group semantics intact: active under g, inert without.
        assert_eq!(s.solve_with(&[g, !v[0], !v[1], !v[2]]), SolveResult::Unsat);
        assert_eq!(s.solve_with(&[!v[0], !v[1], !v[2]]), SolveResult::Sat);
        // Retirement accounting unchanged: both group clauses (one of
        // them strengthened) are still owned by the group.
        assert_eq!(s.retire_group(g), 2);
    }

    #[test]
    fn retired_clauses_are_skipped() {
        let mut s = eager();
        let v = vars(&mut s, 3);
        s.add_clause(&[v[0], v[1]]);
        let wide = s.add_clause(&[v[0], v[1], v[2]]).unwrap();
        assert!(s.retire_clause(wide));
        let retired_before = s.stats().retired_clauses;
        assert_eq!(s.inprocess(), None);
        assert_eq!(s.stats().vivified_clauses, 0, "retired ids untouched");
        assert_eq!(s.stats().retired_clauses, retired_before);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn precancelled_governor_makes_inprocess_a_usable_noop() {
        let mut s = eager();
        let v = vars(&mut s, 3);
        s.add_clause(&[v[0], v[1]]);
        s.add_clause(&[v[0], v[1], v[2]]);
        let gov = ResourceGovernor::unlimited();
        gov.cancel();
        s.set_governor(gov.clone());
        assert_eq!(s.inprocess(), Some(ExhaustionReason::Cancelled));
        assert_eq!(s.stats().vivified_clauses, 0);
        assert_eq!(s.stats().probed_literals, 0);
        assert_eq!(s.stats().inprocess_rounds, 0);
        // The solver is untouched and immediately usable again.
        gov.reset_cancellation();
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn expired_budget_deadline_stops_inprocessing() {
        let mut s = eager();
        let v = vars(&mut s, 3);
        s.add_clause(&[v[0], v[1]]);
        s.add_clause(&[v[0], v[1], v[2]]);
        s.set_budget(Budget::unlimited().with_earlier_deadline(Some(Instant::now())));
        assert_eq!(s.inprocess(), Some(ExhaustionReason::Deadline));
        assert_eq!(s.stats().inprocess_rounds, 0);
        s.set_budget(Budget::unlimited());
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn expired_deadline_with_nonzero_budgets_is_a_strict_noop() {
        // Nonzero per-technique budgets must not buy even one unit of
        // work once the deadline is behind us: the deadline is checked
        // before the first clause/probe is touched, so every
        // inprocessing counter stays at zero.
        let mut s = Solver::with_config(
            SolverConfig::default().inprocess(
                InprocessConfig::default()
                    .vivify_clause_budget(64)
                    .subsume_clause_budget(64)
                    .probe_var_budget(64)
                    .scale_to_conflicts(false),
            ),
        );
        let v = vars(&mut s, 4);
        s.add_clause(&[v[0], v[1]]);
        s.add_clause(&[v[0], v[1], v[2]]);
        s.add_clause(&[v[1], v[2], v[3]]);
        s.set_budget(Budget::unlimited().with_earlier_deadline(Some(Instant::now())));
        assert_eq!(s.inprocess(), Some(ExhaustionReason::Deadline));
        let stats = s.stats();
        assert_eq!(stats.vivified_clauses, 0);
        assert_eq!(stats.vivified_literals, 0);
        assert_eq!(stats.subsumed_clauses, 0);
        assert_eq!(stats.subsumed_literals, 0);
        assert_eq!(stats.probed_literals, 0);
        assert_eq!(stats.failed_literals, 0);
        assert_eq!(stats.inprocess_rounds, 0);
        // And the solver is immediately usable once the budget allows.
        s.set_budget(Budget::unlimited());
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.solve_with(&[!v[0], !v[1]]), SolveResult::Unsat);
    }

    #[test]
    fn fault_mid_vivification_stops_cleanly() {
        let mut s = eager();
        let v = vars(&mut s, 40);
        for i in 0..38 {
            s.add_clause(&[v[i], v[i + 1]]);
            s.add_clause(&[v[i], v[i + 1], v[i + 2]]);
        }
        // Trip cancellation on the very first vivified clause.
        s.set_governor(ResourceGovernor::unlimited().with_fault(FaultSite::Vivify, 1));
        assert_eq!(s.inprocess(), Some(ExhaustionReason::Cancelled));
        assert_eq!(s.decision_level(), 0, "trail clean after the trip");
        assert_eq!(s.stats().inprocess_rounds, 0);
        // Usable after a governor replacement, and still correct.
        s.set_governor(ResourceGovernor::unlimited());
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.solve_with(&[!v[0], !v[1]]), SolveResult::Unsat);
    }

    #[test]
    fn fault_sites_cover_each_technique() {
        for site in [FaultSite::Vivify, FaultSite::Subsume, FaultSite::Probe] {
            let mut s = eager();
            let v = vars(&mut s, 8);
            for i in 0..6 {
                s.add_clause(&[v[i], v[i + 1]]);
                s.add_clause(&[v[i], v[i + 1], v[i + 2]]);
            }
            s.set_governor(ResourceGovernor::unlimited().with_fault(site, 1));
            assert_eq!(
                s.inprocess(),
                Some(ExhaustionReason::Cancelled),
                "{site:?} must be noted inside its technique"
            );
            s.set_governor(ResourceGovernor::unlimited());
            assert_eq!(s.solve(), SolveResult::Sat);
        }
    }

    #[test]
    fn disabled_config_is_a_noop_even_when_cancelled() {
        let mut s =
            Solver::with_config(SolverConfig::default().inprocess(InprocessConfig::disabled()));
        let v = vars(&mut s, 2);
        s.add_clause(&[v[0], v[1]]);
        assert_eq!(s.inprocess(), None);
        assert_eq!(s.stats().inprocess_rounds, 0);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn inprocess_detects_unsat_database() {
        let mut s = eager();
        let v = vars(&mut s, 2);
        // a ↔ b plus a xor b: unsatisfiable; probing both phases of `a`
        // fails and the second failed unit conflicts at level 0.
        s.add_clause(&[!v[0], v[1]]);
        s.add_clause(&[v[0], !v[1]]);
        s.add_clause(&[v[0], v[1]]);
        s.add_clause(&[!v[0], !v[1]]);
        assert_eq!(s.inprocess(), None);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn inprocessing_between_queries_preserves_answers() {
        // A deterministic miniature of the BMC cadence: interleave
        // solve calls and inprocessing on one growing solver and check
        // answers against fresh reference solvers.
        let mut s = eager();
        let v = vars(&mut s, 12);
        let mut clauses: Vec<Vec<Lit>> = Vec::new();
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..8 {
            for _ in 0..6 {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let r = rng();
                    let var = v[(r % 12) as usize];
                    c.push(if r & 0x1000 == 0 { var } else { !var });
                }
                c.sort_unstable();
                c.dedup();
                clauses.push(c.clone());
                s.add_clause(&c);
            }
            assert_eq!(s.inprocess(), None, "round {round}");
            let got = s.solve();
            let mut reference = Solver::new();
            let _ = vars(&mut reference, 12);
            for c in &clauses {
                reference.add_clause(c);
            }
            assert_eq!(got, reference.solve(), "round {round}");
            if got == SolveResult::Unsat {
                break;
            }
        }
    }
}
