//! The simplifying CNF sink: circuit simplification on the unrolled formula.
//!
//! BMC with Efficient Memory Modeling keeps the *per-frame* constraint size
//! small, but the seed encoder still re-Tseitin-encodes structurally
//! identical logic at every unrolling depth and emits every gate of the
//! design's combinational core whether or not anything downstream reads it.
//! This module removes that redundancy with a sink layer between the
//! encoders and the solver:
//!
//! ```text
//! Unroller ─┐
//! LfpBuilder ├──> SimplifySink ──> Solver (or any other CnfSink)
//! EmmEncoder ┘
//! ```
//!
//! [`SimplifySink`] implements [`CnfSink`] and applies three cooperating
//! optimizations to every [`CnfSink::add_and_gate`] request:
//!
//! 1. **Cross-frame structural hashing** — gates are interned in a hash
//!    table keyed by their (canonically ordered) operand literals, after
//!    constant and identity folding at the literal level. Because latch
//!    outputs at frame `k+1` reuse frame `k`'s next-state literals, a cone
//!    whose inputs stabilize across frames collapses to a single copy, no
//!    matter how deep the unrolling goes.
//! 2. **Simulation-guided SAT sweeping** (opt-in,
//!    [`SimplifyConfig::sweeping`]) — every literal carries a 64-bit
//!    random-simulation signature (the gate output's value under 64 random
//!    input patterns). Structurally *different* gates whose signatures
//!    coincide are candidate equivalences; a bounded incremental SAT call
//!    ([`CnfSink::prove_equiv`]) verifies the candidate, and on success the
//!    new gate is merged into the older representative, sharing its whole
//!    downstream cone. The checks spend solver time during encoding, which
//!    is why the pass is not on by default.
//! 3. **Lazy emission** — a gate's Tseitin clauses are withheld until the
//!    gate's output is referenced by an emitted clause (or explicitly
//!    [`SimplifySink::materialize`]d for use as an assumption). Logic
//!    outside every property/constraint/memory cone costs zero clauses,
//!    giving a dynamic, literal-level cone-of-influence reduction.
//!
//! Clause traffic is also filtered through the unit-literal store: clauses
//! satisfied by a level-0 unit are dropped and false literals are stripped.
//!
//! All state lives in a [`Simplifier`], which persists across frames (that
//! is what makes the hashing *cross-frame*); [`SimplifySink`] is a
//! short-lived view pairing the state with the underlying sink:
//!
//! ```
//! use emm_sat::{CnfSink, Simplifier, SimplifyConfig, Solver};
//!
//! let mut solver = Solver::new();
//! let mut simp = Simplifier::new(SimplifyConfig::default());
//! let mut sink = simp.attach(&mut solver);
//! let a = sink.new_var().positive();
//! let b = sink.new_var().positive();
//! let g1 = sink.add_and_gate(a, b);
//! let g2 = sink.add_and_gate(b, a); // commuted: structurally hashed
//! assert_eq!(g1, g2);
//! assert_eq!(simp.stats().cache_hits, 1);
//! ```
//!
//! Soundness: folding and hashing are purely structural rewrites; sweeping
//! merges only literals the solver itself proved equivalent under the
//! clauses emitted so far, which stays entailed as the formula grows; lazy
//! emission withholds only definitions of literals no emitted clause
//! mentions, and a solver never sees a reference to a withheld definition.
//! The result is equivalent to the naive encoding over the shared
//! variables — the differential tests in `emm-bmc` check exactly that.

use std::collections::HashMap;

use crate::clause::ClauseId;
use crate::govern::{FaultSite, ResourceGovernor};
use crate::lit::{Lit, Var};
use crate::sink::CnfSink;

/// Tunable knobs of the simplifying sink.
#[derive(Clone, Copy, Debug)]
pub struct SimplifyConfig {
    /// Master switch; when `false` the sink is a transparent passthrough.
    /// When `true`, literal-level constant/identity folding of gates and
    /// unit-literal learning are always active — they are the substrate
    /// the optional passes below build on.
    pub enabled: bool,
    /// Intern gates by canonical operand pair.
    pub structural_hashing: bool,
    /// Merge signature-equal gates after a bounded SAT equivalence check.
    /// Off by default: the checks run incremental solver calls during
    /// encoding, which costs wall-clock time that the extra merges rarely
    /// win back on solve time — enable it (see [`SimplifyConfig::sweeping`])
    /// when formula size (memory, clause count) is the binding constraint.
    pub sat_sweeping: bool,
    /// Conflict budget per sweeping implication check.
    pub sweep_conflicts: u64,
    /// Candidates tried per gate before giving up on a sweep merge.
    pub max_sweep_candidates: usize,
    /// Sweep credit pool for the simplifier's lifetime. A successful merge
    /// costs 1 credit; a refuted or budget-exhausted check costs
    /// [`SimplifyConfig::SWEEP_MISS_COST`] — refutations force the solver
    /// to build a complete model, which is expensive on big formulas, so a
    /// workload where sweeping does not pay burns out quickly while a
    /// merge-rich one keeps sweeping.
    pub sweep_credits: u64,
    /// Signature-bucket size cap (bounds sweeping memory and work).
    pub max_bucket: usize,
    /// Withhold gate clauses until the gate output is referenced.
    pub lazy_emission: bool,
    /// Drop clauses satisfied by a known unit, strip false literals.
    pub clause_folding: bool,
    /// Physically retire the three Tseitin clauses of a gate the sweeping
    /// pass merges away (via [`CnfSink::retire_clause`]). Sound because a
    /// merge happens at the moment the gate is emitted, before any other
    /// clause references its output, and the recorded substitution keeps
    /// it unreferenced forever — the definition is a removable
    /// definitional extension. Only effective together with
    /// [`SimplifyConfig::sat_sweeping`] and a solver-backed sink.
    pub retire_merged: bool,
}

impl Default for SimplifyConfig {
    fn default() -> SimplifyConfig {
        SimplifyConfig {
            enabled: true,
            structural_hashing: true,
            sat_sweeping: false,
            sweep_conflicts: 16,
            max_sweep_candidates: 2,
            sweep_credits: 1024,
            max_bucket: 16,
            lazy_emission: true,
            clause_folding: true,
            retire_merged: true,
        }
    }
}

impl SimplifyConfig {
    /// Credits consumed by a sweep check that does not merge.
    pub const SWEEP_MISS_COST: u64 = 32;

    /// A configuration that disables every optimization (passthrough).
    pub fn disabled() -> SimplifyConfig {
        SimplifyConfig {
            enabled: false,
            ..SimplifyConfig::default()
        }
    }

    /// The default passes plus SAT sweeping (maximum formula reduction).
    pub fn sweeping() -> SimplifyConfig {
        SimplifyConfig {
            sat_sweeping: true,
            ..SimplifyConfig::default()
        }
    }
}

/// Counters describing what the sink saved (and what sweeping cost).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimplifyStats {
    /// `add_and_gate` requests received.
    pub gate_queries: u64,
    /// Requests answered by constant/identity folding (no gate at all).
    pub folded: u64,
    /// Requests answered from the structural-hash table.
    pub cache_hits: u64,
    /// Fresh gate variables created.
    pub gates_created: u64,
    /// Gates whose Tseitin clauses were actually emitted.
    pub gates_emitted: u64,
    /// Sweep equivalence checks attempted.
    pub sweep_checks: u64,
    /// Gates merged into an equivalent representative.
    pub sweep_merges: u64,
    /// Sweep candidates refuted by a distinguishing model.
    pub sweep_refuted: u64,
    /// Sweep checks abandoned on the conflict budget.
    pub sweep_unknown: u64,
    /// Sweep candidates skipped without a SAT call: duplicates of an
    /// already-tried pair, or candidates whose signature a mid-call
    /// refinement separated from the gate under test. Each skip is a
    /// refutation-shaped check (and its [`SimplifyConfig::SWEEP_MISS_COST`]
    /// credits) that the old re-queue behavior would have paid twice.
    pub sweep_stale_skips: u64,
    /// Clauses received via `add_clause`.
    pub clauses_in: u64,
    /// Clauses forwarded to the inner sink (gate encodings excluded).
    pub clauses_emitted: u64,
    /// Clauses dropped because a known unit already satisfies them.
    pub clauses_dropped: u64,
    /// False literals stripped from forwarded clauses.
    pub literals_stripped: u64,
    /// Tseitin clauses of swept-away gates physically retired from the
    /// solver (up to 3 per [`SimplifyStats::sweep_merges`]; fewer when the
    /// solver dropped a clause at add time, e.g. satisfied at level 0).
    pub clauses_retired: u64,
    /// Sweeping was stopped early by the simplifier's
    /// [`ResourceGovernor`] (deadline or cancellation). Hashing, folding,
    /// and lazy emission keep working — they are pure rewrites — so the
    /// encoding stays correct; only further SAT sweep checks are skipped.
    pub interrupted: bool,
}

impl SimplifyStats {
    /// Gates created but never emitted: dead logic the lazy pass elided.
    pub fn gates_elided(&self) -> u64 {
        self.gates_created - self.gates_emitted
    }
}

/// Persistent state of the simplifying layer (see the [module docs](self)).
///
/// One `Simplifier` accompanies one solver for the whole BMC run; attach it
/// to the solver with [`Simplifier::attach`] whenever clauses are emitted.
#[derive(Debug, Default)]
pub struct Simplifier {
    config: SimplifyConfig,
    /// Structural-hash table: canonical `(a, b)` operand pair -> output.
    cache: HashMap<(Lit, Lit), Lit>,
    /// Gates created but not yet emitted: output var -> operands.
    pending: HashMap<Var, (Lit, Lit)>,
    /// Sweep substitutions: merged output var -> representative literal.
    repr: HashMap<Var, Lit>,
    /// 64-bit random-simulation signature per variable.
    sig: Vec<u64>,
    /// Whether `sig[i]` has been assigned (zero is a legitimate value).
    sig_set: Vec<bool>,
    /// Emitted (live) gate outputs bucketed by signature.
    buckets: HashMap<u64, Vec<Lit>>,
    /// Literals fixed by unit clauses: var -> forced value.
    units: HashMap<Var, bool>,
    /// Sweep credits consumed so far (see [`SimplifyConfig::sweep_credits`]).
    sweep_spent: u64,
    /// A literal known false, once one exists (for folding results).
    known_false: Option<Lit>,
    /// Shared resource governor, polled before every sweep SAT check.
    governor: ResourceGovernor,
    stats: SimplifyStats,
}

/// Mixes a variable index into a pseudorandom 64-bit pattern (SplitMix64
/// finalizer). Signatures must be deterministic so differential runs and
/// resumed sessions agree.
fn input_signature(index: usize) -> u64 {
    let mut z = (index as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Simplifier {
    /// Creates an empty simplifier.
    pub fn new(config: SimplifyConfig) -> Simplifier {
        Simplifier {
            config,
            ..Simplifier::default()
        }
    }

    /// The configuration this simplifier runs with.
    pub fn config(&self) -> &SimplifyConfig {
        &self.config
    }

    /// Installs a shared [`ResourceGovernor`]. It is polled before every
    /// sweep equivalence check; a trip permanently stops SAT sweeping
    /// (the pure structural passes continue) and sets
    /// [`SimplifyStats::interrupted`].
    pub fn set_governor(&mut self, governor: ResourceGovernor) {
        self.governor = governor;
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &SimplifyStats {
        &self.stats
    }

    /// Pairs this state with the sink that receives the simplified output.
    pub fn attach<'a, S: CnfSink + ?Sized>(&'a mut self, inner: &'a mut S) -> SimplifySink<'a, S> {
        SimplifySink { simp: self, inner }
    }

    /// Resolves a literal through the sweep-substitution chains.
    pub fn resolve(&self, mut lit: Lit) -> Lit {
        while let Some(&rep) = self.repr.get(&lit.var()) {
            lit = if lit.is_positive() { rep } else { !rep };
        }
        lit
    }

    /// The signature of `lit` (variable signature, sign-adjusted).
    fn lit_sig(&mut self, lit: Lit) -> u64 {
        let s = self.var_sig(lit.var());
        if lit.is_negative() {
            !s
        } else {
            s
        }
    }

    /// The signature of `var`, assigning a random input signature on first
    /// use (covers variables created directly on the inner sink). A
    /// computed all-zero signature (deep AND chains, false units) is a
    /// legitimate value, so assignedness is tracked separately in
    /// `sig_set` rather than by a sentinel.
    fn var_sig(&mut self, var: Var) -> u64 {
        self.grow_sig(var);
        if !self.sig_set[var.index()] {
            self.sig[var.index()] = input_signature(var.index());
            self.sig_set[var.index()] = true;
        }
        self.sig[var.index()]
    }

    fn set_var_sig(&mut self, var: Var, sig: u64) {
        self.grow_sig(var);
        self.sig[var.index()] = sig;
        self.sig_set[var.index()] = true;
    }

    fn grow_sig(&mut self, var: Var) {
        if self.sig.len() <= var.index() {
            self.sig.resize(var.index() + 1, 0);
            self.sig_set.resize(var.index() + 1, false);
        }
    }

    /// The forced value of `lit` under recorded unit clauses, if any.
    fn lit_value(&self, lit: Lit) -> Option<bool> {
        self.units.get(&lit.var()).map(|&v| v ^ lit.is_negative())
    }

    /// Records a level-0 unit and aligns the variable's signature with it.
    fn learn_unit(&mut self, lit: Lit) {
        let value = lit.is_positive();
        self.units.insert(lit.var(), value);
        self.set_var_sig(lit.var(), if value { u64::MAX } else { 0 });
        if self.known_false.is_none() {
            self.known_false = Some(!lit);
        }
    }
}

/// A [`CnfSink`] that simplifies gate and clause traffic on its way into
/// `inner`. Created by [`Simplifier::attach`]; see the [module docs](self).
///
/// # Examples
///
/// Structural hashing interns commuted gates, and lazy emission withholds
/// a gate's clauses until something references its output:
///
/// ```
/// use emm_sat::{CnfSink, Simplifier, SimplifyConfig, Solver};
///
/// let mut solver = Solver::new();
/// let mut simp = Simplifier::new(SimplifyConfig::default());
/// let mut sink = simp.attach(&mut solver);
/// let a = sink.new_var().positive();
/// let b = sink.new_var().positive();
/// let g1 = sink.add_and_gate(a, b);
/// let g2 = sink.add_and_gate(b, a); // same gate, commuted
/// assert_eq!(g1, g2);
/// let folded = sink.add_and_gate(a, a); // x & x folds to x, no gate
/// assert_eq!(folded, a);
/// drop(sink);
/// assert_eq!(simp.stats().cache_hits, 1);
/// assert_eq!(simp.stats().gates_created, 1);
/// ```
#[derive(Debug)]
pub struct SimplifySink<'a, S: CnfSink + ?Sized> {
    simp: &'a mut Simplifier,
    inner: &'a mut S,
}

impl<S: CnfSink + ?Sized> SimplifySink<'_, S> {
    /// A literal constrained false in the inner sink (creating one on first
    /// use), for folding results like `a ∧ ¬a`.
    fn false_lit(&mut self) -> Lit {
        if let Some(f) = self.simp.known_false {
            return f;
        }
        let v = self.inner.new_var();
        self.inner.add_clause(&[v.negative()]);
        self.simp.learn_unit(v.negative());
        v.positive()
    }

    /// Resolves `lit` and emits the Tseitin cones of every still-pending
    /// gate it (transitively) depends on, returning the final resolved
    /// literal. Use this before passing an encoder literal to the solver as
    /// an **assumption** — assumptions bypass `add_clause`, so this is the
    /// only way their defining clauses are guaranteed to exist.
    pub fn materialize(&mut self, lit: Lit) -> Lit {
        let lit = self.simp.resolve(lit);
        if !self.simp.pending.contains_key(&lit.var()) {
            return lit;
        }
        let mut stack: Vec<Var> = vec![lit.var()];
        while let Some(&v) = stack.last() {
            let Some(&(a, b)) = self.simp.pending.get(&v) else {
                stack.pop();
                continue;
            };
            let a = self.simp.resolve(a);
            let b = self.simp.resolve(b);
            let pa = self.simp.pending.contains_key(&a.var());
            let pb = self.simp.pending.contains_key(&b.var());
            if pa || pb {
                if pa {
                    stack.push(a.var());
                }
                if pb {
                    stack.push(b.var());
                }
                continue;
            }
            self.simp.pending.remove(&v);
            self.emit_gate(v.positive(), a, b);
            stack.pop();
        }
        self.simp.resolve(lit)
    }

    /// Emits `out = a ∧ b` into the inner sink, then offers `out` to the
    /// sweeping pass (which may record a substitution for future uses).
    /// When the sweep merges `out` away the just-emitted Tseitin clauses
    /// are retired again: at this instant they are the only clauses
    /// mentioning `out`, and the substitution guarantees no later clause
    /// ever will, so the definition is dead weight in the solver.
    fn emit_gate(&mut self, out: Lit, a: Lit, b: Lit) {
        let ids = [
            self.inner.add_clause(&[!out, a]),
            self.inner.add_clause(&[!out, b]),
            self.inner.add_clause(&[out, !a, !b]),
        ];
        self.simp.stats.gates_emitted += 1;
        let sig = self.simp.lit_sig(a) & self.simp.lit_sig(b);
        self.simp.set_var_sig(out.var(), sig);
        // Degenerate signatures are useless as equivalence evidence: long
        // AND chains drive signatures to all-zeros, so an all-zero bucket
        // fills with unrelated gates and every membership test costs two
        // SAT calls. Such gates neither join buckets nor get swept.
        if sig == 0 || sig == u64::MAX {
            return;
        }
        if self.simp.config.sat_sweeping && self.sweep(out, sig) {
            if self.simp.config.retire_merged {
                for id in ids.into_iter().flatten() {
                    if self.inner.retire_clause(id) {
                        self.simp.stats.clauses_retired += 1;
                    }
                }
            }
            return;
        }
        // A refuted sweep candidate refines every signature mid-call;
        // re-read `out`'s so the bucket key matches its stored signature.
        let sig = self.simp.lit_sig(out);
        if sig == 0 || sig == u64::MAX {
            return;
        }
        let bucket = self.simp.buckets.entry(sig).or_default();
        if bucket.len() < self.simp.config.max_bucket {
            bucket.push(out);
        }
    }

    /// Tries to merge `out` into a signature-equal emitted gate; returns
    /// `true` when a substitution was recorded.
    ///
    /// The candidate list is snapshotted from the buckets up front, but a
    /// refuted check refines every signature mid-call, so later entries can
    /// be *stale*: re-queued pairs (two bucket entries resolving to the same
    /// representative) or candidates the fresh counterexample pattern
    /// already separates from `out`. Both are skipped without a SAT call —
    /// each skipped check would otherwise be a guaranteed refutation
    /// charging [`SimplifyConfig::SWEEP_MISS_COST`] credits a second time
    /// for information the refinement already extracted (see
    /// [`SimplifyStats::sweep_stale_skips`]).
    fn sweep(&mut self, out: Lit, sig: u64) -> bool {
        let credits = self.simp.config.sweep_credits;
        if self.simp.sweep_spent >= credits {
            return false;
        }
        let mut candidates: Vec<Lit> = Vec::new();
        if let Some(bucket) = self.simp.buckets.get(&sig) {
            candidates.extend(bucket.iter().copied());
        }
        if let Some(bucket) = self.simp.buckets.get(&!sig) {
            candidates.extend(bucket.iter().map(|&l| !l));
        }
        let budget = self.simp.config.sweep_conflicts;
        let mut tried = 0usize;
        let mut tried_vars: Vec<Var> = Vec::new();
        for cand in candidates {
            if tried >= self.simp.config.max_sweep_candidates || self.simp.sweep_spent >= credits {
                break;
            }
            if self.simp.governor.poll().is_some() {
                // Governor tripped: burn the remaining credit pool so no
                // later gate re-enters the sweep. Merges recorded so far
                // were proved, so the encoding stays sound.
                self.simp.stats.interrupted = true;
                self.simp.sweep_spent = credits;
                break;
            }
            let cand = self.simp.resolve(cand);
            if cand.var() == out.var() {
                continue;
            }
            if tried_vars.contains(&cand.var()) {
                self.simp.stats.sweep_stale_skips += 1;
                continue;
            }
            if self.simp.lit_sig(cand) != self.simp.lit_sig(out) {
                self.simp.stats.sweep_stale_skips += 1;
                continue;
            }
            tried_vars.push(cand.var());
            tried += 1;
            self.simp.stats.sweep_checks += 1;
            let answer = self.inner.prove_equiv(out, cand, budget);
            self.simp.governor.note(FaultSite::SweepCheck);
            match answer {
                Some(true) => {
                    self.simp.sweep_spent += 1;
                    self.simp.stats.sweep_merges += 1;
                    let rep = if out.is_positive() { cand } else { !cand };
                    self.simp.repr.insert(out.var(), rep);
                    return true;
                }
                Some(false) => {
                    self.simp.sweep_spent += SimplifyConfig::SWEEP_MISS_COST;
                    self.simp.stats.sweep_refuted += 1;
                    // The distinguishing model is a genuine simulation
                    // pattern; fold it into every signature so this (and
                    // similar) false candidates separate from now on.
                    self.refine_signatures();
                }
                None => {
                    self.simp.sweep_spent += SimplifyConfig::SWEEP_MISS_COST;
                    self.simp.stats.sweep_unknown += 1;
                }
            }
        }
        false
    }

    /// Shifts the latest model into every signature and re-buckets the
    /// sweep candidates under their refined signatures. Each position of a
    /// signature stays a real simulation pattern (the model satisfies every
    /// emitted gate clause), so AND-consistency is preserved.
    fn refine_signatures(&mut self) {
        for (i, sig) in self.simp.sig.iter_mut().enumerate() {
            if !self.simp.sig_set[i] {
                continue;
            }
            if let Some(v) = self.inner.model_lit(Var::from_index(i).positive()) {
                *sig = (*sig << 1) | (v as u64);
            }
        }
        let mut members: Vec<Lit> = self.simp.buckets.drain().flat_map(|(_, v)| v).collect();
        // HashMap drain order is randomized; sort so candidate order and
        // max_bucket eviction stay deterministic across runs.
        members.sort_unstable();
        for m in members {
            let s = self.simp.lit_sig(m);
            if s == 0 || s == u64::MAX {
                continue;
            }
            let bucket = self.simp.buckets.entry(s).or_default();
            if bucket.len() < self.simp.config.max_bucket {
                bucket.push(m);
            }
        }
    }
}

impl<S: CnfSink + ?Sized> CnfSink for SimplifySink<'_, S> {
    fn new_var(&mut self) -> Var {
        let v = self.inner.new_var();
        // Touch the signature so inputs get their random pattern now.
        let _ = self.simp.var_sig(v);
        v
    }

    fn add_clause(&mut self, lits: &[Lit]) -> Option<ClauseId> {
        if !self.simp.config.enabled {
            return self.inner.add_clause(lits);
        }
        self.simp.stats.clauses_in += 1;
        // Fold on resolved literals first, materializing only the cones of
        // clauses that actually survive — a cone referenced solely by
        // dropped clauses stays pending (the point of lazy emission).
        let mut resolved: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            let l = self.simp.resolve(l);
            if self.simp.config.clause_folding {
                match self.simp.lit_value(l) {
                    Some(true) => {
                        self.simp.stats.clauses_dropped += 1;
                        return None;
                    }
                    Some(false) => {
                        self.simp.stats.literals_stripped += 1;
                        continue;
                    }
                    None => {}
                }
            }
            resolved.push(l);
        }
        for l in resolved.iter_mut() {
            *l = self.materialize(*l);
        }
        if resolved.len() == 1 {
            self.simp.learn_unit(resolved[0]);
        }
        self.simp.stats.clauses_emitted += 1;
        self.inner.add_clause(&resolved)
    }

    fn add_and_gate(&mut self, a: Lit, b: Lit) -> Lit {
        if !self.simp.config.enabled {
            return self.inner.add_and_gate(a, b);
        }
        self.simp.stats.gate_queries += 1;
        let a = self.simp.resolve(a);
        let b = self.simp.resolve(b);
        // Constant and identity folding at the literal level.
        let va = self.simp.lit_value(a);
        let vb = self.simp.lit_value(b);
        if va == Some(false) {
            self.simp.stats.folded += 1;
            return a;
        }
        if vb == Some(false) {
            self.simp.stats.folded += 1;
            return b;
        }
        if va == Some(true) || a == b {
            self.simp.stats.folded += 1;
            return b;
        }
        if vb == Some(true) {
            self.simp.stats.folded += 1;
            return a;
        }
        if a == !b {
            self.simp.stats.folded += 1;
            return self.false_lit();
        }
        // Canonical operand order makes the table commutative.
        let key = if a.code() <= b.code() { (a, b) } else { (b, a) };
        if self.simp.config.structural_hashing {
            if let Some(&out) = self.simp.cache.get(&key) {
                self.simp.stats.cache_hits += 1;
                return self.simp.resolve(out);
            }
        }
        let out = self.inner.new_var().positive();
        self.simp.stats.gates_created += 1;
        let sig = self.simp.lit_sig(a) & self.simp.lit_sig(b);
        self.simp.set_var_sig(out.var(), sig);
        if self.simp.config.lazy_emission {
            self.simp.pending.insert(out.var(), (a, b));
        } else {
            self.emit_gate(out, a, b);
        }
        if self.simp.config.structural_hashing {
            self.simp.cache.insert(key, out);
        }
        out
    }

    fn prove_equiv(&mut self, a: Lit, b: Lit, max_conflicts: u64) -> Option<bool> {
        let a = self.materialize(a);
        let b = self.materialize(b);
        self.inner.prove_equiv(a, b, max_conflicts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{SolveResult, Solver};

    fn setup() -> (Solver, Simplifier) {
        (Solver::new(), Simplifier::new(SimplifyConfig::default()))
    }

    #[test]
    fn structural_hashing_is_commutative_and_cross_call() {
        let (mut s, mut simp) = setup();
        let mut sink = simp.attach(&mut s);
        let a = sink.new_var().positive();
        let b = sink.new_var().positive();
        let g1 = sink.add_and_gate(a, b);
        let g2 = sink.add_and_gate(b, a);
        let g3 = sink.add_and_gate(a, b);
        assert_eq!(g1, g2);
        assert_eq!(g1, g3);
        assert_eq!(simp.stats().cache_hits, 2);
        assert_eq!(simp.stats().gates_created, 1);
    }

    #[test]
    fn folding_rules() {
        let (mut s, mut simp) = setup();
        let mut sink = simp.attach(&mut s);
        let a = sink.new_var().positive();
        let b = sink.new_var().positive();
        // Identity and contradiction.
        assert_eq!(sink.add_and_gate(a, a), a);
        let f = sink.add_and_gate(a, !a);
        assert_eq!(sink.add_and_gate(b, !b), f);
        // Constants learned from unit clauses.
        sink.add_clause(&[a]); // a is true
        assert_eq!(sink.add_and_gate(a, b), b);
        assert_eq!(sink.add_and_gate(b, f), f, "false annihilates");
        assert_eq!(simp.stats().folded, 5);
        assert_eq!(simp.stats().gates_created, 0);
    }

    #[test]
    fn lazy_emission_defers_until_referenced() {
        let (mut s, mut simp) = setup();
        let mut sink = simp.attach(&mut s);
        let a = sink.new_var().positive();
        let b = sink.new_var().positive();
        let c = sink.new_var().positive();
        let dead = sink.add_and_gate(a, b);
        let live = sink.add_and_gate(b, c);
        let before = s.stats().original_clauses;
        assert_eq!(before, 0, "no gate clauses before a reference");
        let mut sink = simp.attach(&mut s);
        sink.add_clause(&[live]);
        assert_eq!(s.stats().original_clauses, 4, "3 Tseitin + 1 unit");
        assert_eq!(simp.stats().gates_emitted, 1);
        assert_eq!(simp.stats().gates_elided(), 1);
        let _ = dead;
    }

    #[test]
    fn materialize_chain_emits_whole_cone() {
        let (mut s, mut simp) = setup();
        let mut sink = simp.attach(&mut s);
        let vars: Vec<Lit> = (0..4).map(|_| sink.new_var().positive()).collect();
        let g1 = sink.add_and_gate(vars[0], vars[1]);
        let g2 = sink.add_and_gate(g1, vars[2]);
        let g3 = sink.add_and_gate(g2, vars[3]);
        let m = sink.materialize(g3);
        assert_eq!(m, g3);
        assert_eq!(simp.stats().gates_emitted, 3);
        // The materialized literal behaves like the conjunction.
        for v in &vars {
            s.add_clause(&[*v]);
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(g3), Some(true));
    }

    #[test]
    fn sweeping_merges_absorbed_gate() {
        let mut s = Solver::new();
        let mut simp = Simplifier::new(SimplifyConfig::sweeping());
        let mut sink = simp.attach(&mut s);
        let a = sink.new_var().positive();
        let b = sink.new_var().positive();
        let x = sink.add_and_gate(a, b);
        sink.materialize(x);
        // y = a ∧ (a ∧ b) is absorbed: equivalent to x, but a different
        // structural key, so only sweeping can find it.
        let y = sink.add_and_gate(a, x);
        let my = sink.materialize(y);
        assert_eq!(my, x, "sweep must substitute the representative");
        assert_eq!(simp.stats().sweep_merges, 1);
    }

    /// A sweep merge retires the merged gate's three Tseitin clauses from
    /// the solver, and the solver-side count matches the sink's.
    #[test]
    fn sweep_merge_retires_tseitin_clauses() {
        let mut s = Solver::new();
        let mut simp = Simplifier::new(SimplifyConfig::sweeping());
        let mut sink = simp.attach(&mut s);
        let a = sink.new_var().positive();
        let b = sink.new_var().positive();
        let x = sink.add_and_gate(a, b);
        sink.materialize(x);
        let y = sink.add_and_gate(a, x); // absorbed: y ≡ x
        let my = sink.materialize(y);
        assert_eq!(my, x);
        assert_eq!(simp.stats().sweep_merges, 1);
        assert_eq!(simp.stats().clauses_retired, 3);
        assert_eq!(s.stats().retired_clauses, 3);
        // The solver answers as if y's definition never existed; the
        // representative's definition still constrains x.
        s.add_clause(&[a]);
        s.add_clause(&[b]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(x), Some(true));
    }

    /// With `retire_merged` off the merged definitions stay resident
    /// (the pre-retirement behavior, kept for differential comparison).
    #[test]
    fn retire_merged_can_be_disabled() {
        let mut s = Solver::new();
        let mut simp = Simplifier::new(SimplifyConfig {
            retire_merged: false,
            ..SimplifyConfig::sweeping()
        });
        let mut sink = simp.attach(&mut s);
        let a = sink.new_var().positive();
        let b = sink.new_var().positive();
        let x = sink.add_and_gate(a, b);
        sink.materialize(x);
        let y = sink.add_and_gate(a, x);
        sink.materialize(y);
        assert_eq!(simp.stats().sweep_merges, 1);
        assert_eq!(simp.stats().clauses_retired, 0);
        assert_eq!(s.stats().retired_clauses, 0);
    }

    #[test]
    fn disabled_config_is_passthrough() {
        let mut s = Solver::new();
        let mut simp = Simplifier::new(SimplifyConfig::disabled());
        let mut sink = simp.attach(&mut s);
        let a = sink.new_var().positive();
        let b = sink.new_var().positive();
        let g1 = sink.add_and_gate(a, b);
        let g2 = sink.add_and_gate(b, a);
        assert_ne!(g1, g2, "no hashing when disabled");
        assert_eq!(s.stats().original_clauses, 6, "gates emitted eagerly");
    }

    #[test]
    fn clause_folding_drops_satisfied_and_strips_false() {
        let (mut s, mut simp) = setup();
        let mut sink = simp.attach(&mut s);
        let a = sink.new_var().positive();
        let b = sink.new_var().positive();
        let c = sink.new_var().positive();
        sink.add_clause(&[a]);
        sink.add_clause(&[!b]);
        let emitted_before = simp.stats().clauses_emitted;
        let mut sink = simp.attach(&mut s);
        assert!(
            sink.add_clause(&[a, c]).is_none(),
            "satisfied clause dropped"
        );
        sink.add_clause(&[b, c]); // b stripped -> unit c
        assert_eq!(simp.stats().clauses_dropped, 1);
        assert_eq!(simp.stats().literals_stripped, 1);
        assert_eq!(simp.stats().clauses_emitted, emitted_before + 1);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(c), Some(true));
    }

    /// Re-queue pinning (white-box): when a refuted check refines the
    /// signatures mid-`sweep`, candidates the fresh counterexample pattern
    /// already separates from the gate under test are skipped without a
    /// second SAT call — the old behavior charged `SWEEP_MISS_COST` again
    /// for a refutation the refinement had already performed. The bucket
    /// collision is staged directly (signature collisions between
    /// inequivalent gates arise from refinement shifts in long runs and
    /// cannot be constructed through the public API deterministically).
    #[test]
    fn refuted_sweep_skips_refinement_separated_candidates() {
        let mut s = Solver::new();
        let mut simp = Simplifier::new(SimplifyConfig::sweeping());
        let mut sink = simp.attach(&mut s);
        let a = sink.new_var().positive();
        let b = sink.new_var().positive();
        let c = sink.new_var().positive();
        let d = sink.new_var().positive();
        let e = sink.new_var().positive();
        let f = sink.new_var().positive();
        let g1 = sink.add_and_gate(a, b);
        let g1 = sink.materialize(g1);
        let g2 = sink.add_and_gate(c, d);
        let g2 = sink.materialize(g2);
        // Pin g2 false in every model, so any distinguishing model for a
        // true gate separates g2 as well.
        sink.add_clause(&[!c]);
        // Stage the collision: both emitted gates share one bucket under a
        // common signature, and the next gate will land on it too.
        let t = 0x0123_4567_89AB_CDEFu64;
        simp.set_var_sig(g1.var(), t);
        simp.set_var_sig(g2.var(), t);
        simp.buckets.clear();
        simp.buckets.insert(t, vec![g1, g2]);
        simp.set_var_sig(e.var(), t);
        simp.set_var_sig(f.var(), u64::MAX);
        let mut sink = simp.attach(&mut s);
        let g3 = sink.add_and_gate(e, f);
        sink.materialize(g3);
        let st = *simp.stats();
        assert_eq!(st.sweep_checks, 1, "only the first candidate is checked");
        assert_eq!(st.sweep_refuted, 1);
        assert_eq!(st.sweep_merges, 0, "no merge across the counterexample");
        assert_eq!(st.sweep_stale_skips, 1, "g2 separated by the refinement");
        assert_eq!(
            simp.sweep_spent,
            SimplifyConfig::SWEEP_MISS_COST,
            "the skipped candidate is not charged a second miss"
        );
    }

    /// Re-queue pinning (white-box): two bucket entries resolving to the
    /// same representative are one candidate pair, checked (and charged)
    /// once.
    #[test]
    fn duplicate_bucket_entries_are_checked_once() {
        let mut s = Solver::new();
        let mut simp = Simplifier::new(SimplifyConfig::sweeping());
        let mut sink = simp.attach(&mut s);
        let a = sink.new_var().positive();
        let b = sink.new_var().positive();
        let e = sink.new_var().positive();
        let f = sink.new_var().positive();
        let g1 = sink.add_and_gate(a, b);
        let g1 = sink.materialize(g1);
        let t = 0x0123_4567_89AB_CDEFu64;
        simp.set_var_sig(g1.var(), t);
        simp.buckets.clear();
        simp.buckets.insert(t, vec![g1, g1]);
        simp.set_var_sig(e.var(), t);
        simp.set_var_sig(f.var(), u64::MAX);
        let mut sink = simp.attach(&mut s);
        let g3 = sink.add_and_gate(e, f);
        sink.materialize(g3);
        let st = *simp.stats();
        assert_eq!(st.sweep_checks, 1);
        assert_eq!(st.sweep_stale_skips, 1, "the duplicate entry is deduped");
        assert_eq!(simp.sweep_spent, SimplifyConfig::SWEEP_MISS_COST);
    }

    /// A cancelled governor stops sweeping (no SAT work) but leaves the
    /// pure structural passes — and the encoding's correctness — intact.
    #[test]
    fn cancelled_governor_stops_sweeping() {
        let mut s = Solver::new();
        let mut simp = Simplifier::new(SimplifyConfig::sweeping());
        let governor = ResourceGovernor::unlimited();
        governor.cancel();
        simp.set_governor(governor);
        let mut sink = simp.attach(&mut s);
        let a = sink.new_var().positive();
        let b = sink.new_var().positive();
        let x = sink.add_and_gate(a, b);
        sink.materialize(x);
        let y = sink.add_and_gate(a, x); // absorbed: only sweeping finds it
        let my = sink.materialize(y);
        assert_eq!(my, y, "no merge without a SAT proof");
        assert_eq!(simp.stats().sweep_checks, 0);
        assert!(simp.stats().interrupted);
        // The formula is still the honest Tseitin encoding.
        s.add_clause(&[a]);
        s.add_clause(&[b]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(y), Some(true));
    }

    /// The fault injector trips after the Nth sweep check: the Nth check's
    /// merge stands, later candidates are left unswept.
    #[test]
    fn fault_injection_halts_after_nth_sweep_check() {
        let mut s = Solver::new();
        let mut simp = Simplifier::new(SimplifyConfig::sweeping());
        simp.set_governor(ResourceGovernor::unlimited().with_fault(FaultSite::SweepCheck, 1));
        let mut sink = simp.attach(&mut s);
        let a = sink.new_var().positive();
        let b = sink.new_var().positive();
        let c = sink.new_var().positive();
        let d = sink.new_var().positive();
        let x = sink.add_and_gate(a, b);
        sink.materialize(x);
        let y = sink.add_and_gate(a, x); // check 1: merges, then trips
        let my = sink.materialize(y);
        let u = sink.add_and_gate(c, d);
        sink.materialize(u);
        let v = sink.add_and_gate(c, u); // would be check 2 — never issued
        let mv = sink.materialize(v);
        assert_eq!(my, x, "the pre-trip merge stands");
        assert_eq!(mv, v, "the post-trip candidate is left alone");
        assert_eq!(simp.stats().sweep_checks, 1);
        assert_eq!(simp.stats().sweep_merges, 1);
        assert!(simp.stats().interrupted);
    }

    /// Equisatisfiability spot check: a small gate pyramid behaves the same
    /// with and without the simplifying layer under every input assignment.
    #[test]
    fn simplified_pyramid_matches_naive() {
        for assignment in 0u32..16 {
            let mut naive = Solver::new();
            let mut plain = Solver::new();
            let mut simp = Simplifier::new(SimplifyConfig::default());

            let build = |sink: &mut dyn CnfSink| -> (Vec<Lit>, Lit) {
                let vars: Vec<Lit> = (0..4).map(|_| sink.new_var().positive()).collect();
                let l = sink.add_and_gate(vars[0], vars[1]);
                let r = sink.add_or_gate(vars[2], vars[3]);
                let top = sink.add_and_gate(l, r);
                (vars, top)
            };
            let (nv, nt) = build(&mut naive);
            let mut sink = simp.attach(&mut plain);
            let (sv, st_raw) = build(&mut sink);
            let st = sink.materialize(st_raw);

            for (i, (&n, &s)) in nv.iter().zip(&sv).enumerate() {
                let value = (assignment >> i) & 1 == 1;
                naive.add_clause(&[if value { n } else { !n }]);
                plain.add_clause(&[if value { s } else { !s }]);
            }
            assert_eq!(naive.solve(), SolveResult::Sat);
            assert_eq!(plain.solve(), SolveResult::Sat);
            assert_eq!(
                naive.model_value(nt),
                plain.model_value(st),
                "assignment {assignment:04b}"
            );
        }
    }
}
