//! A deliberately tiny reference solver used as a differential-testing
//! oracle for the CDCL engine.
//!
//! [`NaiveSolver`] enumerates assignments with plain DPLL (unit propagation +
//! chronological backtracking) and is exponential; keep it to roughly twenty
//! variables.

use crate::lit::{Lit, Var};

/// Exhaustive DPLL reference solver.
///
/// ```
/// use emm_sat::naive::NaiveSolver;
/// use emm_sat::{Lit, Var};
/// let mut s = NaiveSolver::new(2);
/// let a = Var::from_index(0).positive();
/// let b = Var::from_index(1).positive();
/// s.add_clause(&[a, b]);
/// s.add_clause(&[!a]);
/// assert_eq!(s.solve(), Some(true));
/// ```
#[derive(Debug, Default, Clone)]
pub struct NaiveSolver {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
    model: Vec<bool>,
}

impl NaiveSolver {
    /// Creates a reference solver over `num_vars` variables.
    pub fn new(num_vars: usize) -> NaiveSolver {
        NaiveSolver {
            num_vars,
            clauses: Vec::new(),
            model: Vec::new(),
        }
    }

    /// Adds a clause (no preprocessing).
    pub fn add_clause(&mut self, lits: &[Lit]) {
        self.clauses.push(lits.to_vec());
    }

    /// Returns `Some(true)` if satisfiable, `Some(false)` if not, and `None`
    /// when the problem exceeds the enumeration guard (24 variables).
    pub fn solve(&mut self) -> Option<bool> {
        if self.num_vars > 24 {
            return None;
        }
        let mut assign: Vec<Option<bool>> = vec![None; self.num_vars];
        let sat = self.dpll(&mut assign);
        if sat {
            self.model = assign.iter().map(|v| v.unwrap_or(false)).collect();
        }
        Some(sat)
    }

    /// Model value after a satisfiable answer.
    pub fn model_value(&self, lit: Lit) -> bool {
        self.model[lit.var().index()] ^ lit.is_negative()
    }

    fn dpll(&self, assign: &mut Vec<Option<bool>>) -> bool {
        // Unit propagation to fixpoint.
        let mut forced: Vec<Var> = Vec::new();
        loop {
            let mut changed = false;
            for clause in &self.clauses {
                let mut unassigned: Option<Lit> = None;
                let mut n_unassigned = 0;
                let mut satisfied = false;
                for &l in clause {
                    match assign[l.var().index()] {
                        Some(v) if v != l.is_negative() => {
                            satisfied = true;
                            break;
                        }
                        Some(_) => {}
                        None => {
                            n_unassigned += 1;
                            unassigned = Some(l);
                        }
                    }
                }
                if satisfied {
                    continue;
                }
                match n_unassigned {
                    0 => {
                        for v in forced {
                            assign[v.index()] = None;
                        }
                        return false;
                    }
                    1 => {
                        let l = unassigned.expect("one unassigned literal");
                        assign[l.var().index()] = Some(l.is_positive());
                        forced.push(l.var());
                        changed = true;
                    }
                    _ => {}
                }
            }
            if !changed {
                break;
            }
        }
        // Branch on the first unassigned variable.
        match (0..self.num_vars).find(|&v| assign[v].is_none()) {
            None => true,
            Some(v) => {
                for value in [true, false] {
                    assign[v] = Some(value);
                    if self.dpll(assign) {
                        return true;
                    }
                    assign[v] = None;
                }
                for v in forced {
                    assign[v.index()] = None;
                }
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_sat() {
        let a = Var::from_index(0).positive();
        let b = Var::from_index(1).positive();
        let mut s = NaiveSolver::new(2);
        s.add_clause(&[a, b]);
        s.add_clause(&[!a, b]);
        assert_eq!(s.solve(), Some(true));
        assert!(s.model_value(b));
    }

    #[test]
    fn simple_unsat() {
        let a = Var::from_index(0).positive();
        let mut s = NaiveSolver::new(1);
        s.add_clause(&[a]);
        s.add_clause(&[!a]);
        assert_eq!(s.solve(), Some(false));
    }

    #[test]
    fn refuses_large_problems() {
        let mut s = NaiveSolver::new(30);
        assert_eq!(s.solve(), None);
    }
}
