//! Arena-allocated clause storage with mark-and-compact garbage collection.
//!
//! Clauses live in one contiguous `Vec<u32>`; a [`ClauseRef`] is an offset
//! into that arena. Each clause has a fixed four-word header:
//!
//! ```text
//! word 0: literal count
//! word 1: flags (bit 0: learnt, bit 1: deleted, bit 2: gc mark)
//! word 2: clause id (for unsat-core / proof tracking; 0 when untracked)
//! word 3: activity (f32 bits, learnt clauses) | LBD in high bits of word 1
//! ```
//!
//! followed by the literals. Deleted clauses are only marked; space is
//! reclaimed by [`ClauseDb::collect_garbage`], which compacts the arena and
//! reports the relocation map to the caller so watch lists and reason
//! pointers can be patched.

use crate::lit::Lit;

/// Stable identifier of a tracked clause, used in unsat cores.
///
/// Ids are assigned by the solver in insertion order and survive garbage
/// collection (unlike the internal `ClauseRef`, which is a raw arena offset).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ClauseId(pub u32);

impl ClauseId {
    /// Id used for clauses that are not tracked for core extraction.
    pub const UNTRACKED: ClauseId = ClauseId(0);

    /// Returns `true` if this clause participates in core tracking.
    #[inline]
    pub fn is_tracked(self) -> bool {
        self.0 != 0
    }
}

/// A reference to a clause in the arena (a raw offset).
///
/// Invalidated by [`ClauseDb::collect_garbage`]; the relocation callback
/// must be used to update any stored references.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ClauseRef(u32);

impl ClauseRef {
    /// A sentinel that never refers to a real clause.
    pub const INVALID: ClauseRef = ClauseRef(u32::MAX);

    #[inline]
    fn offset(self) -> usize {
        self.0 as usize
    }

    /// Returns `true` unless this is [`ClauseRef::INVALID`].
    #[inline]
    pub fn is_valid(self) -> bool {
        self.0 != u32::MAX
    }
}

const HEADER_WORDS: usize = 4;
const FLAG_LEARNT: u32 = 1;
const FLAG_DELETED: u32 = 2;
const FLAG_MARK: u32 = 4;
const LBD_SHIFT: u32 = 8;

/// The clause arena.
#[derive(Debug, Default)]
pub struct ClauseDb {
    arena: Vec<u32>,
    /// Words occupied by deleted clauses, to decide when to compact.
    wasted: usize,
}

impl ClauseDb {
    /// Creates an empty clause database.
    pub fn new() -> ClauseDb {
        ClauseDb::default()
    }

    /// Allocates a clause; returns its reference.
    ///
    /// # Panics
    ///
    /// Panics if `lits` is empty (empty clauses are handled by the solver
    /// before reaching the arena).
    pub fn alloc(&mut self, lits: &[Lit], learnt: bool, id: ClauseId) -> ClauseRef {
        assert!(!lits.is_empty(), "cannot allocate an empty clause");
        let offset = self.arena.len();
        self.arena.push(lits.len() as u32);
        self.arena.push(if learnt { FLAG_LEARNT } else { 0 });
        self.arena.push(id.0);
        self.arena.push(0f32.to_bits());
        self.arena.extend(lits.iter().map(|l| l.code() as u32));
        ClauseRef(offset as u32)
    }

    /// Returns the literals of a clause.
    #[inline]
    pub fn lits(&self, cref: ClauseRef) -> &[Lit] {
        let off = cref.offset();
        let len = self.arena[off] as usize;
        let body = &self.arena[off + HEADER_WORDS..off + HEADER_WORDS + len];
        // SAFETY-free cast: Lit is a transparent-by-construction wrapper over
        // u32 codes; we reconstruct through the safe constructor instead.
        // To avoid per-access allocation we transmute via bytemuck-like
        // manual cast; since Lit is repr(Rust) we instead rely on identical
        // layout being unspecified -- so we use the safe slice-of-u32 view
        // and convert lazily. For performance we keep an unsafe cast here
        // guarded by a compile-time size assertion.
        const _: () = assert!(std::mem::size_of::<Lit>() == std::mem::size_of::<u32>());
        unsafe { std::slice::from_raw_parts(body.as_ptr() as *const Lit, len) }
    }

    /// Returns the literals of a clause, mutably.
    #[inline]
    pub fn lits_mut(&mut self, cref: ClauseRef) -> &mut [Lit] {
        let off = cref.offset();
        let len = self.arena[off] as usize;
        let body = &mut self.arena[off + HEADER_WORDS..off + HEADER_WORDS + len];
        unsafe { std::slice::from_raw_parts_mut(body.as_mut_ptr() as *mut Lit, len) }
    }

    /// Number of literals in the clause.
    #[inline]
    pub fn len(&self, cref: ClauseRef) -> usize {
        self.arena[cref.offset()] as usize
    }

    /// Returns `true` if the arena holds no clauses.
    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }

    /// Returns `true` if the clause was learned during search.
    #[inline]
    pub fn is_learnt(&self, cref: ClauseRef) -> bool {
        self.arena[cref.offset() + 1] & FLAG_LEARNT != 0
    }

    /// Returns `true` if the clause has been deleted (awaiting GC).
    #[inline]
    #[allow(dead_code)]
    pub fn is_deleted(&self, cref: ClauseRef) -> bool {
        self.arena[cref.offset() + 1] & FLAG_DELETED != 0
    }

    /// Returns the tracking id of the clause.
    #[inline]
    pub fn id(&self, cref: ClauseRef) -> ClauseId {
        ClauseId(self.arena[cref.offset() + 2])
    }

    /// Returns the clause activity (learnt clauses only; 0.0 otherwise).
    #[inline]
    pub fn activity(&self, cref: ClauseRef) -> f32 {
        f32::from_bits(self.arena[cref.offset() + 3])
    }

    /// Sets the clause activity.
    #[inline]
    pub fn set_activity(&mut self, cref: ClauseRef, activity: f32) {
        self.arena[cref.offset() + 3] = activity.to_bits();
    }

    /// Returns the stored literal-block-distance of a learnt clause.
    #[inline]
    pub fn lbd(&self, cref: ClauseRef) -> u32 {
        self.arena[cref.offset() + 1] >> LBD_SHIFT
    }

    /// Stores the literal-block-distance of a learnt clause.
    #[inline]
    pub fn set_lbd(&mut self, cref: ClauseRef, lbd: u32) {
        let off = cref.offset() + 1;
        let flags = self.arena[off] & ((1 << LBD_SHIFT) - 1);
        self.arena[off] = flags | (lbd.min(u32::MAX >> LBD_SHIFT) << LBD_SHIFT);
    }

    // NOTE: there is deliberately no in-place `shrink`: reducing the
    // stored length word would desynchronize the linear arena walk that
    // `collect_garbage`/`ClauseIter` use to advance from clause to
    // clause. Strengthening (inprocess.rs) reallocates instead: alloc
    // the shorter clause under the same id, delete the old allocation,
    // and let GC compact.

    /// Marks a clause deleted; the space is reclaimed by the next GC.
    pub fn delete(&mut self, cref: ClauseRef) {
        let off = cref.offset();
        debug_assert!(self.arena[off + 1] & FLAG_DELETED == 0);
        self.arena[off + 1] |= FLAG_DELETED;
        self.wasted += HEADER_WORDS + self.arena[off] as usize;
    }

    /// Words currently wasted by deleted clauses.
    pub fn wasted(&self) -> usize {
        self.wasted
    }

    /// Total words in the arena.
    pub fn capacity_words(&self) -> usize {
        self.arena.len()
    }

    /// Compacts the arena, dropping deleted clauses.
    ///
    /// Calls `relocate(old, new)` for every surviving clause so the owner can
    /// patch watch lists and reason references.
    pub fn collect_garbage(&mut self, mut relocate: impl FnMut(ClauseRef, ClauseRef)) {
        let mut new_arena = Vec::with_capacity(self.arena.len() - self.wasted);
        let mut off = 0usize;
        while off < self.arena.len() {
            let len = self.arena[off] as usize;
            let flags = self.arena[off + 1];
            let total = HEADER_WORDS + len;
            if flags & FLAG_DELETED == 0 {
                let new_off = new_arena.len();
                new_arena.extend_from_slice(&self.arena[off..off + total]);
                relocate(ClauseRef(off as u32), ClauseRef(new_off as u32));
            }
            off += total;
        }
        self.arena = new_arena;
        self.wasted = 0;
    }

    /// Iterates over the references of all live clauses.
    #[allow(dead_code)]
    pub fn iter(&self) -> ClauseIter<'_> {
        ClauseIter { db: self, off: 0 }
    }

    #[allow(dead_code)]
    fn flag_mark(&self, cref: ClauseRef) -> bool {
        self.arena[cref.offset() + 1] & FLAG_MARK != 0
    }
}

/// Iterator over live clause references; see [`ClauseDb::iter`].
#[derive(Debug)]
#[allow(dead_code)]
pub struct ClauseIter<'a> {
    db: &'a ClauseDb,
    off: usize,
}

impl Iterator for ClauseIter<'_> {
    type Item = ClauseRef;

    fn next(&mut self) -> Option<ClauseRef> {
        while self.off < self.db.arena.len() {
            let cref = ClauseRef(self.off as u32);
            let len = self.db.arena[self.off] as usize;
            self.off += HEADER_WORDS + len;
            if !self.db.is_deleted(cref) {
                return Some(cref);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    fn lits(idx: &[usize]) -> Vec<Lit> {
        idx.iter().map(|&i| Var::from_index(i).positive()).collect()
    }

    #[test]
    fn alloc_and_read_back() {
        let mut db = ClauseDb::new();
        let a = db.alloc(&lits(&[1, 2, 3]), false, ClauseId(7));
        let b = db.alloc(&lits(&[4, 5]), true, ClauseId::UNTRACKED);
        assert_eq!(db.lits(a), &lits(&[1, 2, 3])[..]);
        assert_eq!(db.lits(b), &lits(&[4, 5])[..]);
        assert_eq!(db.len(a), 3);
        assert!(!db.is_learnt(a));
        assert!(db.is_learnt(b));
        assert_eq!(db.id(a), ClauseId(7));
        assert!(!db.id(b).is_tracked());
    }

    #[test]
    fn activity_and_lbd() {
        let mut db = ClauseDb::new();
        let c = db.alloc(&lits(&[0, 1]), true, ClauseId::UNTRACKED);
        db.set_activity(c, 3.5);
        assert_eq!(db.activity(c), 3.5);
        db.set_lbd(c, 9);
        assert_eq!(db.lbd(c), 9);
        assert!(db.is_learnt(c), "lbd must not clobber flags");
        db.set_activity(c, 1.25);
        assert_eq!(db.lbd(c), 9);
    }

    #[test]
    fn gc_compacts_and_relocates() {
        let mut db = ClauseDb::new();
        let a = db.alloc(&lits(&[1, 2, 3]), false, ClauseId(1));
        let b = db.alloc(&lits(&[4, 5]), true, ClauseId(2));
        let c = db.alloc(&lits(&[6, 7, 8, 9]), false, ClauseId(3));
        db.delete(b);
        assert!(db.wasted() > 0);
        let mut moves = Vec::new();
        db.collect_garbage(|old, new| moves.push((old, new)));
        assert_eq!(moves.len(), 2);
        assert_eq!(moves[0].0, a);
        // After compaction the surviving clauses are contiguous.
        let survivors: Vec<ClauseRef> = db.iter().collect();
        assert_eq!(survivors.len(), 2);
        assert_eq!(db.lits(survivors[0]), &lits(&[1, 2, 3])[..]);
        assert_eq!(db.lits(survivors[1]), &lits(&[6, 7, 8, 9])[..]);
        assert_eq!(db.id(survivors[1]), ClauseId(3));
        let _ = c;
        assert_eq!(db.wasted(), 0);
    }
}
