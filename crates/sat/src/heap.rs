//! Indexed binary max-heap ordering variables by VSIDS activity.

use crate::lit::Var;

/// A binary max-heap over variables keyed by an external activity array.
///
/// Supports `O(log n)` insertion and removal plus `decrease`/`increase`
/// notifications when a variable's activity changes, which is exactly the
/// interface VSIDS branching needs.
#[derive(Debug, Default)]
pub struct VarHeap {
    /// Heap of variable indices.
    heap: Vec<u32>,
    /// `position[v]` = index of `v` in `heap`, or `NOT_IN_HEAP`.
    position: Vec<u32>,
}

const NOT_IN_HEAP: u32 = u32::MAX;

impl VarHeap {
    /// Creates an empty heap.
    pub fn new() -> VarHeap {
        VarHeap::default()
    }

    /// Extends internal arrays to cover `num_vars` variables.
    pub fn grow_to(&mut self, num_vars: usize) {
        self.position.resize(num_vars, NOT_IN_HEAP);
    }

    /// Returns `true` if `var` is currently in the heap.
    #[inline]
    pub fn contains(&self, var: Var) -> bool {
        self.position[var.index()] != NOT_IN_HEAP
    }

    /// Returns `true` if the heap has no elements.
    #[inline]
    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of queued variables.
    #[allow(dead_code)]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Inserts `var` (no-op if already present).
    pub fn insert(&mut self, var: Var, activity: &[f64]) {
        if self.contains(var) {
            return;
        }
        let idx = self.heap.len();
        self.heap.push(var.index() as u32);
        self.position[var.index()] = idx as u32;
        self.sift_up(idx, activity);
    }

    /// Removes and returns the variable with maximal activity.
    pub fn pop_max(&mut self, activity: &[f64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().expect("non-empty");
        self.position[top as usize] = NOT_IN_HEAP;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.position[last as usize] = 0;
            self.sift_down(0, activity);
        }
        Some(Var::from_index(top as usize))
    }

    /// Restores heap order after `var`'s activity increased.
    pub fn update(&mut self, var: Var, activity: &[f64]) {
        let pos = self.position[var.index()];
        if pos != NOT_IN_HEAP {
            self.sift_up(pos as usize, activity);
        }
    }

    /// Rebuilds the heap after a global activity rescale (order unchanged,
    /// but provided for completeness and used by tests).
    #[allow(dead_code)]
    pub fn rebuild(&mut self, activity: &[f64]) {
        for i in (0..self.heap.len() / 2).rev() {
            self.sift_down(i, activity);
        }
    }

    fn sift_up(&mut self, mut idx: usize, activity: &[f64]) {
        let item = self.heap[idx];
        while idx > 0 {
            let parent = (idx - 1) >> 1;
            if activity[self.heap[parent] as usize] >= activity[item as usize] {
                break;
            }
            self.heap[idx] = self.heap[parent];
            self.position[self.heap[idx] as usize] = idx as u32;
            idx = parent;
        }
        self.heap[idx] = item;
        self.position[item as usize] = idx as u32;
    }

    fn sift_down(&mut self, mut idx: usize, activity: &[f64]) {
        let item = self.heap[idx];
        loop {
            let left = 2 * idx + 1;
            if left >= self.heap.len() {
                break;
            }
            let right = left + 1;
            let child = if right < self.heap.len()
                && activity[self.heap[right] as usize] > activity[self.heap[left] as usize]
            {
                right
            } else {
                left
            };
            if activity[item as usize] >= activity[self.heap[child] as usize] {
                break;
            }
            self.heap[idx] = self.heap[child];
            self.position[self.heap[idx] as usize] = idx as u32;
            idx = child;
        }
        self.heap[idx] = item;
        self.position[item as usize] = idx as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let activity = vec![0.5, 3.0, 1.0, 2.0];
        let mut heap = VarHeap::new();
        heap.grow_to(4);
        for i in 0..4 {
            heap.insert(Var::from_index(i), &activity);
        }
        assert_eq!(heap.len(), 4);
        let order: Vec<usize> = std::iter::from_fn(|| heap.pop_max(&activity))
            .map(|v| v.index())
            .collect();
        assert_eq!(order, vec![1, 3, 2, 0]);
        assert!(heap.is_empty());
    }

    #[test]
    fn update_after_bump() {
        let mut activity = vec![1.0, 2.0, 3.0];
        let mut heap = VarHeap::new();
        heap.grow_to(3);
        for i in 0..3 {
            heap.insert(Var::from_index(i), &activity);
        }
        activity[0] = 10.0;
        heap.update(Var::from_index(0), &activity);
        assert_eq!(heap.pop_max(&activity), Some(Var::from_index(0)));
    }

    #[test]
    fn reinsert_is_noop() {
        let activity = vec![1.0];
        let mut heap = VarHeap::new();
        heap.grow_to(1);
        heap.insert(Var::from_index(0), &activity);
        heap.insert(Var::from_index(0), &activity);
        assert_eq!(heap.len(), 1);
    }
}
