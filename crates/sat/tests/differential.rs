//! Differential testing of the CDCL solver against the exhaustive reference
//! solver, plus randomized checks of assumptions and unsat cores.

use emm_sat::naive::NaiveSolver;
use emm_sat::{Budget, CnfSink, Lit, SolveResult, Solver, SolverConfig, Var};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Builds `n_vars` fresh variables in a solver.
fn mk_vars(s: &mut Solver, n: usize) -> Vec<Lit> {
    (0..n).map(|_| s.new_var().positive()).collect()
}

fn random_cnf(rng: &mut StdRng, n_vars: usize, n_clauses: usize, max_len: usize) -> Vec<Vec<Lit>> {
    (0..n_clauses)
        .map(|_| {
            let len = rng.random_range(1..=max_len);
            (0..len)
                .map(|_| {
                    let v = Var::from_index(rng.random_range(0..n_vars));
                    Lit::new(v, rng.random_bool(0.5))
                })
                .collect()
        })
        .collect()
}

#[test]
fn random_cnf_matches_reference() {
    let mut rng = StdRng::seed_from_u64(0xE33);
    let mut n_sat = 0;
    let mut n_unsat = 0;
    for round in 0..300 {
        let n_vars = rng.random_range(3..14);
        let n_clauses = rng.random_range(1..(n_vars * 5));
        let cnf = random_cnf(&mut rng, n_vars, n_clauses, 3);

        let mut cdcl = Solver::new();
        mk_vars(&mut cdcl, n_vars);
        for c in &cnf {
            cdcl.add_clause(c);
        }
        let got = cdcl.solve();

        let mut reference = NaiveSolver::new(n_vars);
        for c in &cnf {
            reference.add_clause(c);
        }
        let expected = reference.solve().expect("small instance");
        match got {
            SolveResult::Sat => {
                assert!(
                    expected,
                    "round {round}: CDCL=SAT, reference=UNSAT\n{cnf:?}"
                );
                n_sat += 1;
                // The model must satisfy every clause.
                for c in &cnf {
                    assert!(
                        c.iter().any(|&l| cdcl.model_value(l) == Some(true)),
                        "round {round}: model violates {c:?}"
                    );
                }
            }
            SolveResult::Unsat => {
                assert!(
                    !expected,
                    "round {round}: CDCL=UNSAT, reference=SAT\n{cnf:?}"
                );
                n_unsat += 1;
            }
            SolveResult::Unknown => panic!("round {round}: unexpected Unknown"),
        }
    }
    assert!(n_sat > 20, "want a healthy mix, got {n_sat} SAT");
    assert!(n_unsat > 20, "want a healthy mix, got {n_unsat} UNSAT");
}

#[test]
fn random_assumptions_match_reference() {
    let mut rng = StdRng::seed_from_u64(0xA55);
    for round in 0..200 {
        let n_vars = rng.random_range(3..12);
        let n_clauses = rng.random_range(1..(n_vars * 4));
        let cnf = random_cnf(&mut rng, n_vars, n_clauses, 3);
        let n_assumptions = rng.random_range(0..=n_vars.min(4));
        let assumptions: Vec<Lit> = (0..n_assumptions)
            .map(|_| {
                Lit::new(
                    Var::from_index(rng.random_range(0..n_vars)),
                    rng.random_bool(0.5),
                )
            })
            .collect();

        let mut cdcl = Solver::new();
        mk_vars(&mut cdcl, n_vars);
        for c in &cnf {
            cdcl.add_clause(c);
        }
        let got = cdcl.solve_with(&assumptions);

        let mut reference = NaiveSolver::new(n_vars);
        for c in &cnf {
            reference.add_clause(c);
        }
        for &a in &assumptions {
            reference.add_clause(&[a]);
        }
        let expected = reference.solve().expect("small instance");
        match got {
            SolveResult::Sat => {
                assert!(
                    expected,
                    "round {round}: CDCL=SAT under {assumptions:?}\n{cnf:?}"
                );
                for &a in &assumptions {
                    assert_eq!(
                        cdcl.model_value(a),
                        Some(true),
                        "assumption {a:?} not honored"
                    );
                }
            }
            SolveResult::Unsat => {
                assert!(
                    !expected,
                    "round {round}: CDCL=UNSAT under {assumptions:?}\n{cnf:?}"
                );
                // The failed assumption set must itself be sufficient.
                let failed = cdcl.failed_assumptions().to_vec();
                for f in &failed {
                    assert!(
                        assumptions.contains(f),
                        "failed lit {f:?} not an assumption"
                    );
                }
                let mut replay = NaiveSolver::new(n_vars);
                for c in &cnf {
                    replay.add_clause(c);
                }
                for &a in &failed {
                    replay.add_clause(&[a]);
                }
                assert_eq!(
                    replay.solve(),
                    Some(false),
                    "round {round}: failed set {failed:?} insufficient"
                );
            }
            SolveResult::Unknown => panic!("round {round}: unexpected Unknown"),
        }
    }
}

#[test]
fn random_unsat_cores_are_sufficient() {
    let mut rng = StdRng::seed_from_u64(0xC04E);
    let mut n_checked = 0;
    for _ in 0..250 {
        let n_vars = rng.random_range(3..10);
        let n_clauses = rng.random_range(n_vars..(n_vars * 6));
        let cnf = random_cnf(&mut rng, n_vars, n_clauses, 3);

        let mut cdcl = Solver::with_config(SolverConfig {
            proof_tracing: true,
            ..SolverConfig::default()
        });
        mk_vars(&mut cdcl, n_vars);
        let mut ids = Vec::new();
        for c in &cnf {
            ids.push(cdcl.add_clause(c));
        }
        if cdcl.solve() != SolveResult::Unsat {
            continue;
        }
        n_checked += 1;
        let core = cdcl.core_clause_ids().expect("tracing on").to_vec();
        assert!(!core.is_empty());
        // Replay only the core clauses: must still be UNSAT.
        let mut replay = NaiveSolver::new(n_vars);
        for (clause, id) in cnf.iter().zip(&ids) {
            if let Some(id) = id {
                if core.contains(id) {
                    replay.add_clause(clause);
                }
            }
        }
        assert_eq!(
            replay.solve(),
            Some(false),
            "core is not sufficient\n{cnf:?}\n{core:?}"
        );
    }
    assert!(
        n_checked > 30,
        "too few UNSAT instances exercised: {n_checked}"
    );
}

#[test]
fn incremental_solving_matches_batch() {
    let mut rng = StdRng::seed_from_u64(0x1234);
    for _ in 0..100 {
        let n_vars = rng.random_range(3..10);
        let cnf = random_cnf(&mut rng, n_vars, n_vars * 4, 3);
        let mut inc = Solver::new();
        mk_vars(&mut inc, n_vars);
        let mut reference = NaiveSolver::new(n_vars);
        for (i, c) in cnf.iter().enumerate() {
            inc.add_clause(c);
            reference.add_clause(c);
            if i % 3 == 0 {
                let got = inc.solve();
                let expected = reference.clone().solve().expect("small");
                match got {
                    SolveResult::Sat => assert!(expected),
                    SolveResult::Unsat => assert!(!expected),
                    SolveResult::Unknown => panic!("unexpected Unknown"),
                }
                if got == SolveResult::Unsat {
                    break;
                }
            }
        }
    }
}

#[test]
#[allow(clippy::needless_range_loop)]
fn budget_unknown_then_resolvable() {
    // A hard instance aborted by budget can be finished with more budget.
    let mut s = Solver::new();
    let mut rows: Vec<Vec<Lit>> = Vec::new();
    let (pigeons, holes) = (9, 8);
    for _ in 0..pigeons {
        rows.push((0..holes).map(|_| s.new_var().positive()).collect());
    }
    for row in &rows {
        s.add_clause(row);
    }
    for h in 0..holes {
        for i in 0..pigeons {
            for j in i + 1..pigeons {
                s.add_clause(&[!rows[i][h], !rows[j][h]]);
            }
        }
    }
    s.set_budget(Budget::conflicts(5));
    assert_eq!(s.solve(), SolveResult::Unknown);
    s.set_budget(Budget::unlimited());
    assert_eq!(s.solve(), SolveResult::Unsat);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tseitin AND/OR trees evaluate like the Boolean functions they encode.
    #[test]
    fn gate_trees_evaluate_correctly(inputs in proptest::collection::vec(any::<bool>(), 4),
                                     structure in 0u8..4) {
        let mut s = Solver::new();
        let lits: Vec<Lit> = (0..4).map(|_| s.new_var().positive()).collect();
        let (out, expected) = match structure {
            0 => {
                let g1 = s.add_and_gate(lits[0], lits[1]);
                let g2 = s.add_and_gate(lits[2], lits[3]);
                (s.add_and_gate(g1, g2), inputs.iter().all(|&b| b))
            }
            1 => {
                let g1 = s.add_or_gate(lits[0], lits[1]);
                let g2 = s.add_or_gate(lits[2], lits[3]);
                (s.add_or_gate(g1, g2), inputs.iter().any(|&b| b))
            }
            2 => {
                let g1 = s.add_and_gate(lits[0], !lits[1]);
                (s.add_or_gate(g1, lits[2]), (inputs[0] && !inputs[1]) || inputs[2])
            }
            _ => {
                let g1 = s.add_or_gate(!lits[0], lits[3]);
                (s.add_and_gate(g1, !lits[2]), (!inputs[0] || inputs[3]) && !inputs[2])
            }
        };
        for (l, &b) in lits.iter().zip(&inputs) {
            s.add_clause(&[if b { *l } else { !*l }]);
        }
        prop_assert_eq!(s.solve(), SolveResult::Sat);
        prop_assert_eq!(s.model_value(out), Some(expected));
    }
}

/// Resolution-traced cores and selector-based (failed-assumption) cores
/// are independent mechanisms for the same question; cross-check them:
/// every clause GROUP the traced core touches must appear in the failed
/// selectors when the same formula is solved with one selector per group.
#[test]
fn traced_cores_agree_with_selector_cores() {
    let mut rng = StdRng::seed_from_u64(0xC0DE);
    let mut checked = 0;
    for _ in 0..150 {
        let n_vars = rng.random_range(3..9);
        let n_groups = rng.random_range(2..5);
        let clauses_per_group = rng.random_range(1..4);
        // Build groups of clauses.
        let groups: Vec<Vec<Vec<Lit>>> = (0..n_groups)
            .map(|_| random_cnf(&mut rng, n_vars, clauses_per_group, 3))
            .collect();

        // Solver A: proof tracing, plain clauses, ids recorded per group.
        let mut a = Solver::with_config(SolverConfig {
            proof_tracing: true,
            ..SolverConfig::default()
        });
        mk_vars(&mut a, n_vars);
        let mut id_group = std::collections::HashMap::new();
        for (gi, group) in groups.iter().enumerate() {
            for clause in group {
                if let Some(id) = a.add_clause(clause) {
                    id_group.insert(id, gi);
                }
            }
        }
        if a.solve() != SolveResult::Unsat {
            continue;
        }
        checked += 1;
        let traced_groups: std::collections::HashSet<usize> = a
            .core_clause_ids()
            .expect("traced")
            .iter()
            .filter_map(|id| id_group.get(id).copied())
            .collect();

        // Solver B: one selector per group, assumption-based core.
        let mut b = Solver::new();
        mk_vars(&mut b, n_vars);
        let selectors: Vec<Lit> = (0..n_groups).map(|_| b.new_var().positive()).collect();
        for (gi, group) in groups.iter().enumerate() {
            for clause in group {
                let mut guarded = clause.clone();
                guarded.push(!selectors[gi]);
                b.add_clause(&guarded);
            }
        }
        assert_eq!(b.solve_with(&selectors), SolveResult::Unsat);
        let failed_groups: std::collections::HashSet<usize> = b
            .failed_assumptions()
            .iter()
            .filter_map(|l| selectors.iter().position(|s| s == l))
            .collect();

        // Both cores must be *sufficient*: replay each through the
        // reference solver.
        for (label, core) in [("traced", &traced_groups), ("selector", &failed_groups)] {
            let mut replay = NaiveSolver::new(n_vars);
            for &gi in core {
                for clause in &groups[gi] {
                    replay.add_clause(clause);
                }
            }
            assert_eq!(
                replay.solve(),
                Some(false),
                "{label} core {core:?} must be sufficient"
            );
        }
    }
    assert!(checked > 20, "too few UNSAT instances: {checked}");
}
