//! Credit/check accounting invariants of the SAT-sweeping pass
//! (`emm_sat::simplify`), pinning the re-queue behavior from the outside:
//!
//! * every sweep check is charged exactly once (`sweep_checks` decomposes
//!   into merges + refutations + unknowns);
//! * a merged gate never re-enters a signature bucket, so rebuilding the
//!   same redundant structure later hits the structural cache instead of
//!   re-queueing the pair for another SAT check.

use emm_sat::{CnfSink, Simplifier, SimplifyConfig, Solver};

#[test]
fn each_sweep_merge_costs_exactly_one_check() {
    let mut s = Solver::new();
    let mut simp = Simplifier::new(SimplifyConfig::sweeping());
    let mut sink = simp.attach(&mut s);
    let a = sink.new_var().positive();
    let b = sink.new_var().positive();
    let x = sink.add_and_gate(a, b);
    let x = sink.materialize(x);
    // Two absorbed variants of x, each structurally fresh, each provable
    // only by sweeping.
    let y = sink.add_and_gate(a, x);
    assert_eq!(sink.materialize(y), x);
    let z = sink.add_and_gate(b, x);
    assert_eq!(sink.materialize(z), x);

    let st = *simp.stats();
    assert_eq!(st.sweep_merges, 2);
    assert_eq!(
        st.sweep_checks,
        st.sweep_merges + st.sweep_refuted + st.sweep_unknown,
        "every check is accounted exactly once"
    );
    assert_eq!(st.sweep_stale_skips, 0, "no collisions in this formula");
}

#[test]
fn merged_gates_are_not_requeued() {
    let mut s = Solver::new();
    let mut simp = Simplifier::new(SimplifyConfig::sweeping());
    let mut sink = simp.attach(&mut s);
    let a = sink.new_var().positive();
    let b = sink.new_var().positive();
    let x = sink.add_and_gate(a, b);
    let x = sink.materialize(x);
    let y = sink.add_and_gate(a, x);
    assert_eq!(sink.materialize(y), x);
    let checks_after_merge = simp.stats().sweep_checks;

    // Rebuilding the merged structure answers from the structural cache:
    // the pair (y, x) is never queued for a second equivalence check.
    let mut sink = simp.attach(&mut s);
    let y_again = sink.add_and_gate(a, x);
    assert_eq!(sink.materialize(y_again), x);
    let st = *simp.stats();
    assert_eq!(st.sweep_checks, checks_after_merge);
    assert!(st.cache_hits >= 1);
}
