//! # emm-verif — Verification of Embedded Memory Systems using EMM
//!
//! A from-scratch Rust reproduction of *"Verification of Embedded Memory
//! Systems using Efficient Memory Modeling"* (Ganai, Gupta, Ashar — DATE
//! 2005): SAT-based Bounded Model Checking that handles large embedded
//! memories **without modeling each memory bit**, supporting multiple
//! memories with multiple read/write ports, correctness proofs via
//! induction with precise arbitrary-initial-memory modeling, and
//! proof-based abstraction.
//!
//! This crate is a facade re-exporting the workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`sat`] | `emm-sat` | CDCL SAT solver (assumptions, group cores, refutation tracing) |
//! | [`aig`] | `emm-aig` | word-level netlists, memories, simulator, traces |
//! | [`core`] | `emm-core` | EMM constraints (the paper's contribution) + explicit baseline |
//! | [`bmc`] | `emm-bmc` | BMC-1/2/3 engines, induction proofs, PBA |
//! | [`bdd`] | `emm-bdd` | BDD package + symbolic model checker |
//! | [`designs`] | `emm-designs` | quicksort, image filter, lookup engine, FIFO/LIFO/regfile/memcpy |
//!
//! ## Quickstart
//!
//! ```
//! use emm_verif::aig::{Design, LatchInit, MemInit};
//! use emm_verif::bmc::{BmcEngine, BmcOptions, BmcVerdict};
//!
//! // A design with an embedded memory: write 0xA to address 5 at cycle 1,
//! // read it back from cycle 3 on.
//! let mut d = Design::new();
//! let mem = d.add_memory("m", 3, 4, MemInit::Zero);
//! let t = d.new_latch_word("t", 3, LatchInit::Zero);
//! let next_t = d.aig.inc(&t);
//! d.set_next_word(&t, &next_t);
//! let at1 = d.aig.eq_const(&t, 1);
//! let waddr = d.aig.const_word(5, 3);
//! let wdata = d.aig.const_word(0xA, 4);
//! d.add_write_port(mem, waddr.clone(), at1, wdata);
//! let c3 = d.aig.const_word(3, 3);
//! let re = d.aig.ule(&c3, &t);
//! let rd = d.add_read_port(mem, waddr, re);
//! let hit = d.aig.eq_const(&rd, 0xA);
//! let bad = d.aig.and(hit, re);
//! d.add_property("sees_write", bad);
//! d.check().map_err(std::io::Error::other)?;
//!
//! // BMC with EMM finds the witness without expanding the memory.
//! let mut engine = BmcEngine::new(&d, BmcOptions::default());
//! let run = engine.check(0, 10).map_err(std::io::Error::other)?;
//! assert!(matches!(run.verdict, BmcVerdict::Counterexample(_)));
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]

pub use emm_aig as aig;
pub use emm_bdd as bdd;
pub use emm_bmc as bmc;
pub use emm_core as core;
pub use emm_designs as designs;
pub use emm_sat as sat;
