//! Program-correctness proof on a tiny CPU with embedded instruction and
//! data memories — the paper's "software programs" workload family.
//!
//! A loader writes a summation program into the instruction memory, the
//! CPU executes it, and BMC-3 with EMM proves that the accumulator at HALT
//! always equals the value the reference emulator predicts. The
//! any-program variant then proves halt-stickiness over *every possible
//! program* (the instruction memory is arbitrary-initialized symbolic
//! state, kept consistent across fetches by the paper's eq. (6)).
//!
//! Run with: `cargo run --release --example cpu_program`

use emm_verif::bmc::{BmcEngine, BmcOptions, BmcVerdict};
use emm_verif::designs::cpu::{emulate, CpuConfig, Instr, Op, TinyCpu};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = CpuConfig {
        imem_addr_width: 3,
        dmem_addr_width: 2,
        data_width: 4,
    };
    // acc = 5; dmem[1] = acc; acc += dmem[1]  (acc = 10 = 0xA); halt.
    let program = vec![
        Instr {
            op: Op::Ldi,
            arg: 5,
        },
        Instr {
            op: Op::Store,
            arg: 1,
        },
        Instr {
            op: Op::Add,
            arg: 1,
        },
        Instr {
            op: Op::Halt,
            arg: 0,
        },
    ];
    let expected = emulate(&config, &program, &[], 100);
    println!(
        "emulator: acc = {} after {} cycles (halted: {})",
        expected.acc, expected.cycles, expected.halted
    );

    let cpu = TinyCpu::with_program(config, &program, expected.acc);
    println!("cpu design: {}", cpu.design.stats());

    // Prove the result property: whenever the CPU halts, acc == expected.
    let prop = cpu.result_correct.expect("concrete program").0 as usize;
    let bound = cpu.load_cycles + expected.cycles + 24;
    let mut engine = BmcEngine::new(
        &cpu.design,
        BmcOptions {
            proofs: true,
            ..BmcOptions::default()
        },
    );
    match engine.check(prop, bound)?.verdict {
        BmcVerdict::Proof { kind, depth } => {
            println!("result_correct proved by {kind:?} at depth {depth}");
        }
        other => panic!("unexpected verdict: {other:?}"),
    }

    // Any-program mode: halt is sticky for every program.
    let any = TinyCpu::any_program(config);
    let mut engine = BmcEngine::new(
        &any.design,
        BmcOptions {
            proofs: true,
            ..BmcOptions::default()
        },
    );
    match engine.check(any.halt_sticky.0 as usize, 32)?.verdict {
        BmcVerdict::Proof { kind, depth } => {
            println!("halt_sticky proved over ALL programs by {kind:?} at depth {depth}");
        }
        other => panic!("unexpected verdict: {other:?}"),
    }
    Ok(())
}
