//! Frontend smoke run over the golden corpus: parse every `corpus/`
//! file with [`ModelSource`] and verify all of its properties through
//! the [`VerificationServer`].
//!
//! This is the file-based twin of `verify_server.rs` — no design is
//! constructed in code; everything the engines see comes out of the
//! AIGER/BTOR2 parsers. The corpus is regenerated with
//! `cargo run -p emm-bench --bin corpus -- --emit`.
//!
//! Run with: `cargo run --release --example corpus_smoke`

use std::path::PathBuf;

use emm_verif::bmc::{ModelSource, ProofEngine, VerificationServer, VerifyBudget, VerifyOptions};

fn main() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            matches!(
                p.extension().and_then(|e| e.to_str()),
                Some("aag") | Some("aig") | Some("btor") | Some("btor2")
            )
        })
        .collect();
    files.sort();
    assert!(!files.is_empty(), "empty corpus — regenerate with --emit");

    // One-call path first: a single property of a single file.
    let (verdict, depth) = ModelSource::from_path(dir.join("image_filter_l4.btor2"))
        .verify(0, &VerifyBudget::default(), VerifyOptions::default())
        .expect("image filter parses and verifies");
    println!("image_filter_l4 p0: {verdict:?} at depth {depth}");
    assert!(verdict.is_counterexample(), "p0 is a reachable property");

    // Then the batch path: every property of every corpus file.
    let budget = VerifyBudget {
        max_depth: 10,
        ..VerifyBudget::default()
    };
    let mut server = VerificationServer::new(2);
    let mut labels = Vec::new();
    for path in &files {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let ids = server
            .submit_model(
                &ModelSource::from_path(path),
                &budget,
                &VerifyOptions::default(),
            )
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        for prop in 0..ids.len() {
            labels.push(format!("{name}:p{prop}"));
        }
    }
    let responses = server.run();
    let mut cex = 0;
    for (label, r) in labels.iter().zip(&responses) {
        assert!(r.error.is_none(), "{label}: job error {:?}", r.error);
        println!("  {label}: {:?} (depth {})", r.verdict, r.depth_reached);
        if r.verdict.is_counterexample() {
            cex += 1;
        }
    }
    let stats = server.stats();
    println!(
        "{} jobs from {} files in {:.3}s = {:.2} jobs/sec ({cex} witnesses)",
        stats.jobs,
        files.len(),
        stats.elapsed_seconds,
        stats.jobs_per_sec
    );
    // The image filter's reachable property bank guarantees witnesses.
    assert!(cex > 0, "corpus must contain reachable properties");

    // Unbounded proofs from the same files: the FIFO/LIFO invariants
    // close under k-induction — same submit_model call, different
    // ProofEngine on the options.
    let inductive = VerifyOptions::default().proof_engine(ProofEngine::KInduction);
    let mut server = VerificationServer::new(2);
    for name in ["fifo_a2d2.btor2", "lifo_a2d2.btor2"] {
        server
            .submit_model(&ModelSource::from_path(dir.join(name)), &budget, &inductive)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
    }
    let responses = server.run();
    let mut proved = 0;
    for r in &responses {
        println!("  induction job {}: {:?}", r.id, r.verdict);
        assert!(
            !r.verdict.is_counterexample(),
            "job {}: an invariant workload produced a counterexample",
            r.id
        );
        if matches!(r.verdict, emm_verif::bmc::BmcVerdict::Proved { .. }) {
            proved += 1;
        }
    }
    // Not every invariant is inductive at this k (FIFO integrity needs a
    // deeper strengthening), but the overflow properties close at k=1.
    assert!(proved >= 2, "expected the inductive invariants to close");
    println!(
        "{proved}/{} invariants proved by k-induction",
        responses.len()
    );
}
