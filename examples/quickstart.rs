//! Quickstart: verify a design with an embedded memory using EMM-based BMC.
//!
//! Builds a small memory-backed design, finds a witness with EMM (no
//! memory bits modeled), validates the trace by re-simulation, then proves
//! a second property by induction.
//!
//! Run with: `cargo run --release --example quickstart`

use emm_verif::aig::{Design, LatchInit, MemInit};
use emm_verif::bmc::{BmcEngine, BmcOptions, BmcVerdict};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A tiny transaction log: every cycle an external value may be
    // committed to the log memory at a rolling pointer; a reader scans the
    // log one entry behind the writer.
    let mut d = Design::new();
    let log = d.add_memory("log", 4, 8, MemInit::Zero);

    let wptr = d.new_latch_word("wptr", 4, LatchInit::Zero);
    let next_wptr = d.aig.inc(&wptr);
    let commit = d.new_input("commit");
    let data = d.new_input_word("data", 8);
    let wptr_adv = d.aig.mux_word(commit, &next_wptr, &wptr);
    d.set_next_word(&wptr, &wptr_adv);
    d.add_write_port(log, wptr.clone(), commit, data);

    // Reader: scans the previous entry whenever the writer committed.
    let last_commit = {
        let (_, l) = d.new_latch("last_commit", LatchInit::Zero);
        d.set_next(l, commit);
        l
    };
    let rptr = d.aig.dec(&wptr);
    let entry = d.add_read_port(log, rptr, last_commit);

    // Property 1 (has witnesses): the reader can observe the value 0x7F.
    let seen_7f = d.aig.eq_const(&entry, 0x7F);
    let bad1 = d.aig.and(seen_7f, last_commit);
    d.add_property("reader_sees_0x7F", bad1);

    // Property 2 (provable): reading without a preceding commit yields 0
    // (the log is zero-initialized and the reader tracks the writer).
    // Stated as: the reader never observes a nonzero entry at cycle 0.
    let t = d.new_latch_word("t", 2, LatchInit::Zero);
    let sat2 = d.aig.eq_const(&t, 2);
    let t_inc = d.aig.inc(&t);
    let t_next = d.aig.mux_word(sat2, &t, &t_inc);
    d.set_next_word(&t, &t_next);
    let at0 = d.aig.eq_const(&t, 0);
    let nonzero = d.aig.redor(&entry);
    let observed = d.aig.and(nonzero, last_commit);
    let bad2 = d.aig.and(at0, observed);
    d.add_property("first_cycle_reads_zero", bad2);

    d.check().map_err(std::io::Error::other)?;
    println!("design: {}", d.stats());

    // --- Witness search with EMM (the paper's BMC-2, Fig. 2) -----------
    let mut engine = BmcEngine::new(&d, BmcOptions::default());
    let run = engine.check(0, 16)?;
    match &run.verdict {
        BmcVerdict::Counterexample(trace) => {
            println!(
                "witness for `reader_sees_0x7F` at depth {} ({} frames), found in {:?}",
                run.depth_reached,
                trace.depth(),
                run.elapsed
            );
            trace.validate(&d).map_err(std::io::Error::other)?;
            println!("trace re-simulates correctly (memory never expanded)");
            println!("{}", emm_verif::aig::report::format_trace(&d, trace));
        }
        other => panic!("unexpected verdict: {other:?}"),
    }

    // --- Proof by induction (the paper's BMC-3, Fig. 3) ----------------
    let mut engine = BmcEngine::new(
        &d,
        BmcOptions {
            proofs: true,
            ..BmcOptions::default()
        },
    );
    let run = engine.check(1, 16)?;
    match &run.verdict {
        BmcVerdict::Proof { kind, depth } => {
            println!("`first_cycle_reads_zero` proved by {kind:?} at depth {depth}");
        }
        other => panic!("unexpected verdict: {other:?}"),
    }
    Ok(())
}
