//! Batch verification with the `VerificationServer`.
//!
//! Builds one memory-backed design, queues every property of it (plus a
//! repeat with a different depth budget) on the server, and runs the
//! batch on the work-stealing pool. Requests sharing the design and
//! preprocessing configuration are reduced once; responses come back in
//! submission order, bit-identical at every worker count.
//!
//! Run with: `cargo run --release --example verify_server`

use std::sync::Arc;

use emm_verif::aig::{Design, LatchInit, MemInit};
use emm_verif::bmc::{VerificationServer, VerifyBudget, VerifyOptions, VerifyRequest};

fn build_design() -> Design {
    // A rolling buffer: a pointer walks an 8-entry memory, writing the
    // cycle count; a read port watches the previous entry.
    let mut d = Design::new();
    let buf = d.add_memory("buf", 3, 8, MemInit::Zero);
    let ptr = d.new_latch_word("ptr", 3, LatchInit::Zero);
    let tick = d.new_latch_word("tick", 8, LatchInit::Zero);
    let next_ptr = d.aig.inc(&ptr);
    let next_tick = d.aig.inc(&tick);
    d.set_next_word(&ptr, &next_ptr);
    d.set_next_word(&tick, &next_tick);
    let t = emm_verif::aig::Aig::TRUE;
    d.add_write_port(buf, ptr.clone(), t, tick.clone());
    let prev = d.aig.dec(&ptr);
    let entry = d.add_read_port(buf, prev, t);

    // Reachable: the watched entry eventually holds the value 5.
    let bad = d.aig.eq_const(&entry, 5);
    d.add_property("entry_reaches_5", bad);
    // Unreachable within the checked bound: the entry holds 200 while
    // the tick counter is still below 16.
    let big = d.aig.eq_const(&entry, 200);
    let early = d.aig.eq_const(&tick, 8);
    let never = d.aig.and(big, early);
    d.add_property("big_entry_early", never);
    d.check().expect("well-formed design");
    d
}

fn main() {
    let design = Arc::new(build_design());

    // Size the pool from EMM_WORKERS (default 1). Responses are the
    // same at every worker count; only the wall clock changes.
    let workers = std::env::var("EMM_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let mut server = VerificationServer::new(workers);

    for p in 0..design.properties().len() {
        server.submit(VerifyRequest {
            design: Arc::clone(&design),
            property: p,
            budget: VerifyBudget {
                max_depth: 16,
                ..VerifyBudget::default()
            },
            options: VerifyOptions::default(),
        });
    }
    // The same property again under a tighter depth budget — an
    // independent job with its own engine and forked governor.
    server.submit(VerifyRequest {
        design: Arc::clone(&design),
        property: 0,
        budget: VerifyBudget {
            max_depth: 4,
            ..VerifyBudget::default()
        },
        options: VerifyOptions::default(),
    });

    println!(
        "running {} jobs on {} worker(s)...",
        server.pending(),
        server.workers()
    );
    let responses = server.run();
    for r in &responses {
        println!(
            "  job {}: {:?} (depth {}, {:.3}s)",
            r.id, r.verdict, r.depth_reached, r.elapsed_seconds
        );
    }
    let stats = server.stats();
    println!(
        "{} jobs in {:.3}s = {:.2} jobs/sec",
        stats.jobs, stats.elapsed_seconds, stats.jobs_per_sec
    );

    // The deep run finds the counterexample; the shallow repeat of the
    // same property stops clean at its bound.
    assert!(responses[0].verdict.is_counterexample());
    assert!(!responses[2].verdict.is_counterexample());
}
