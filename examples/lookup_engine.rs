//! The Industry Design II workflow (Section 5): the full abstraction /
//! invariant-discovery story on a 1-write/3-read lookup engine.
//!
//! 1. Abstract the memory completely → spurious witnesses at the pipeline
//!    depth.
//! 2. Model the memory with EMM → no witnesses.
//! 3. Prove the invariant `G(WE=0 ∨ WD=0)` by backward induction (the
//!    write path can never fire — "could potentially be a design bug").
//! 4. Apply the invariant as a constraint on read data, abstract the
//!    memory, and prove every lookup property on the reduced model.
//!
//! Run with: `cargo run --release --example lookup_engine`

use emm_verif::bmc::{AbstractionSpec, BmcEngine, BmcOptions, BmcVerdict, ProofKind};
use emm_verif::designs::industry2::{Industry2, Industry2Config};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = Industry2Config::small();
    let engine_design = Industry2::new(config);
    let d = &engine_design.design;
    println!("lookup engine: {}", d.stats());

    // --- Step 1: memory fully abstracted -> spurious witnesses ---------
    let no_memory = AbstractionSpec {
        kept_latches: vec![true; d.num_latches()],
        kept_memories: vec![false; d.memories().len()],
    };
    let mut engine = BmcEngine::new(
        d,
        BmcOptions {
            abstraction: Some(no_memory),
            validate_traces: false, // spurious by construction
            ..BmcOptions::default()
        },
    );
    let prop0 = engine_design.lookups[0];
    let run = engine.check(prop0, 20)?;
    match run.verdict {
        BmcVerdict::Counterexample(t) => println!(
            "memory abstracted: SPURIOUS witness at depth {} (paper: depth 7)",
            t.depth() - 1
        ),
        other => panic!("memory abstracted: unexpected {other:?}"),
    }

    // --- Step 2: EMM keeps the semantics -> no witnesses ---------------
    let mut engine = BmcEngine::new(d, BmcOptions::default());
    let run = engine.check(prop0, 30)?;
    match run.verdict {
        BmcVerdict::BoundReached => {
            println!("with EMM: no witness up to depth 30 (paper: none up to 200)")
        }
        other => panic!("with EMM: unexpected {other:?}"),
    }

    // --- Step 3: the invariant proof by backward induction -------------
    let mut engine = BmcEngine::new(
        d,
        BmcOptions {
            proofs: true,
            ..BmcOptions::default()
        },
    );
    let run = engine.check(engine_design.invariant, 10)?;
    match run.verdict {
        BmcVerdict::Proof { kind, depth } => {
            println!("G(WE=0 or WD=0) proved by {kind:?} at depth {depth} (paper: depth 2)");
            assert_eq!(kind, ProofKind::BackwardInduction);
        }
        other => panic!("invariant: unexpected {other:?}"),
    }

    // --- Step 4: invariant as RD constraint + abstracted memory --------
    let constrained = Industry2::new(Industry2Config {
        assume_rd_zero: true,
        ..config
    });
    let cd = &constrained.design;
    let no_memory = AbstractionSpec {
        kept_latches: vec![true; cd.num_latches()],
        kept_memories: vec![false; cd.memories().len()],
    };
    let mut engine = BmcEngine::new(
        cd,
        BmcOptions {
            proofs: true,
            abstraction: Some(no_memory),
            validate_traces: false,
            ..BmcOptions::default()
        },
    );
    let mut proved = 0;
    for &p in &constrained.lookups {
        let run = engine.check(p, 25)?;
        if let BmcVerdict::Proof { .. } = run.verdict {
            proved += 1;
        }
    }
    println!(
        "reduced model with the invariant applied: {proved}/{} lookup properties proved",
        constrained.lookups.len()
    );
    assert_eq!(
        proved,
        constrained.lookups.len(),
        "every lookup property must close on the reduced model"
    );
    Ok(())
}
