//! The quicksort case study end to end (Tables 1 and 2 of the paper, at a
//! test-friendly scale).
//!
//! Proves P1 (sortedness) and P2 (stack discipline) by forward induction
//! with EMM, then uses proof-based abstraction on P2 to discover that the
//! array memory is irrelevant, and re-proves P2 on the reduced model.
//!
//! Run with: `cargo run --release --example quicksort [n] [addr_width] [data_width]`

use emm_verif::bmc::{pba, BmcEngine, BmcOptions, BmcVerdict};
use emm_verif::designs::quicksort::{QuickSort, QuickSortConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(3);
    let aw: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let dw: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(6);

    let qs = QuickSort::new(QuickSortConfig { n, addr_width: aw, data_width: dw, bug: Default::default() });
    println!("quicksort n={n}: {}", qs.design.stats());
    println!(
        "array: AW={} DW={}  stack: AW={} DW={}",
        qs.design.memories()[0].addr_width,
        qs.design.memories()[0].data_width,
        qs.design.memories()[1].addr_width,
        qs.design.memories()[1].data_width,
    );

    // --- BMC-3 forward-induction proofs (Table 1's EMM columns) --------
    for (name, prop) in [("P1", qs.p1.0 as usize), ("P2", qs.p2.0 as usize)] {
        let mut engine =
            BmcEngine::new(&qs.design, BmcOptions { proofs: true, ..BmcOptions::default() });
        let run = engine.check(prop, qs.cycle_bound())?;
        match run.verdict {
            BmcVerdict::Proof { kind, depth } => {
                println!("{name}: proved by {kind:?} at D={depth} in {:?}", run.elapsed);
            }
            other => println!("{name}: unexpected verdict {other:?}"),
        }
    }

    // --- PBA on P2 (Table 2): the array module should drop out ---------
    let config = pba::PbaConfig {
        stability_depth: 6,
        max_depth: qs.cycle_bound(),
        ..pba::PbaConfig::default()
    };
    let disc = pba::discover(&qs.design, qs.p2.0 as usize, &config)?;
    println!(
        "PBA on P2: kept {} of {} latches, {} of 2 memories (stable at {:?}, {:?})",
        disc.abstraction.num_kept_latches(),
        qs.design.num_latches(),
        disc.abstraction.num_kept_memories(),
        disc.stable_at,
        disc.elapsed,
    );
    let array_kept = disc.abstraction.kept_memories[qs.array.0 as usize];
    println!(
        "array memory {}",
        if array_kept { "KEPT (unexpected)" } else { "abstracted away, as in Table 2" }
    );

    // Re-prove P2 on the reduced model.
    let mut engine = BmcEngine::new(
        &qs.design,
        BmcOptions {
            proofs: true,
            abstraction: Some(disc.abstraction.clone()),
            validate_traces: false,
            ..BmcOptions::default()
        },
    );
    let run = engine.check(qs.p2.0 as usize, qs.cycle_bound())?;
    match run.verdict {
        BmcVerdict::Proof { kind, depth } => {
            println!("P2 on reduced model: proved by {kind:?} at D={depth} in {:?}", run.elapsed);
        }
        other => println!("P2 on reduced model: unexpected verdict {other:?}"),
    }
    Ok(())
}
