//! The quicksort case study end to end (Tables 1 and 2 of the paper, at a
//! test-friendly scale).
//!
//! Proves P1 (sortedness) and P2 (stack discipline) by forward induction
//! with EMM, then uses proof-based abstraction on P2 to discover that the
//! array memory is irrelevant, and re-proves P2 on the reduced model.
//!
//! Run with: `cargo run --release --example quicksort [n] [addr_width] [data_width]`

use emm_verif::bmc::{pba, BmcEngine, BmcOptions, BmcVerdict};
use emm_verif::designs::quicksort::{QuickSort, QuickSortConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(3);
    let aw: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let dw: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(6);

    let qs = QuickSort::new(QuickSortConfig {
        n,
        addr_width: aw,
        data_width: dw,
        bug: Default::default(),
    });
    println!("quicksort n={n}: {}", qs.design.stats());
    println!(
        "array: AW={} DW={}  stack: AW={} DW={}",
        qs.design.memories()[0].addr_width,
        qs.design.memories()[0].data_width,
        qs.design.memories()[1].addr_width,
        qs.design.memories()[1].data_width,
    );

    // --- BMC-3 forward-induction proofs (Table 1's EMM columns) --------
    for (name, prop) in [("P1", qs.p1.0 as usize), ("P2", qs.p2.0 as usize)] {
        let mut engine = BmcEngine::new(
            &qs.design,
            BmcOptions {
                proofs: true,
                ..BmcOptions::default()
            },
        );
        let run = engine.check(prop, qs.cycle_bound())?;
        match run.verdict {
            BmcVerdict::Proof { kind, depth } => {
                println!(
                    "{name}: proved by {kind:?} at D={depth} in {:?}",
                    run.elapsed
                );
            }
            other => panic!("{name}: unexpected verdict {other:?}"),
        }
    }

    // --- PBA on P2 (Table 2): the array module should drop out ---------
    // Stability-based discovery is a heuristic: the stable reason set may
    // be insufficient for the full-depth proof, so use the refinement loop
    // (discover, prove, widen on a spurious counterexample) — the same
    // flow the `table2` harness runs.
    let config = pba::PbaConfig {
        stability_depth: 10,
        max_depth: qs.cycle_bound(),
        ..pba::PbaConfig::default()
    };
    let started = std::time::Instant::now();
    let result =
        pba::discover_and_prove(&qs.design, qs.p2.0 as usize, &config, qs.cycle_bound(), 4)?;
    println!(
        "PBA on P2: kept {} of {} latches, {} of 2 memories ({} refinement rounds, {:?})",
        result.abstraction.num_kept_latches(),
        qs.design.num_latches(),
        result.abstraction.num_kept_memories(),
        result.rounds,
        started.elapsed(),
    );
    let array_kept = result.abstraction.kept_memories[qs.array.0 as usize];
    assert!(!array_kept, "PBA must abstract the array away (Table 2)");
    println!("array memory abstracted away, as in Table 2");
    match result.verdict {
        BmcVerdict::Proof { kind, depth } => {
            println!("P2 on reduced model: proved by {kind:?} at D={depth}");
        }
        other => panic!("P2 on reduced model: unexpected verdict {other:?}"),
    }
    Ok(())
}
