//! The Industry Design I workflow: witness hunting plus induction proofs
//! over a property bank on a memory-backed image filter.
//!
//! The paper reports 206 of 216 properties falsified (witnesses up to
//! depth 51) and 10 proved by induction. This example runs the same split
//! on the scaled-down filter; pass `--paper` for the full configuration.
//!
//! Run with: `cargo run --release --example image_filter [--paper]`

use emm_verif::bmc::{BmcEngine, BmcOptions, BmcVerdict};
use emm_verif::designs::image_filter::{ImageFilter, ImageFilterConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let paper = std::env::args().any(|a| a == "--paper");
    let config = if paper {
        ImageFilterConfig::paper()
    } else {
        ImageFilterConfig::small()
    };
    let filter = ImageFilter::new(config);
    println!("image filter: {}", filter.design.stats());

    // One incremental engine for every witness search: unrolling is shared
    // across properties, exactly how the paper's platform amortizes 216
    // properties in 400 seconds.
    let started = std::time::Instant::now();
    let mut engine = BmcEngine::new(&filter.design, BmcOptions::default());
    let mut found = 0;
    let mut max_depth = 0;
    for &p in &filter.reachable {
        let run = engine.check(p, config.max_witness_depth + 4)?;
        match run.verdict {
            BmcVerdict::Counterexample(trace) => {
                found += 1;
                max_depth = max_depth.max(trace.depth() - 1);
            }
            other => panic!("property {p}: no witness ({other:?})"),
        }
    }
    println!(
        "witnesses: {found}/{} (max depth {max_depth}) in {:?}",
        filter.reachable.len(),
        started.elapsed()
    );
    assert_eq!(found, filter.reachable.len(), "every witness must be found");

    // Induction proofs for the invariant properties (BMC-3).
    let started = std::time::Instant::now();
    let mut proved = 0;
    let mut engine = BmcEngine::new(
        &filter.design,
        BmcOptions {
            proofs: true,
            ..BmcOptions::default()
        },
    );
    for &p in &filter.unreachable {
        let run = engine.check(p, 24)?;
        match run.verdict {
            BmcVerdict::Proof { kind, depth } => {
                proved += 1;
                println!("property {p}: proved by {kind:?} at depth {depth}");
            }
            other => panic!("property {p}: not proved ({other:?})"),
        }
    }
    println!(
        "induction proofs: {proved}/{} in {:?}",
        filter.unreachable.len(),
        started.elapsed()
    );
    assert_eq!(
        proved,
        filter.unreachable.len(),
        "every invariant must close"
    );
    Ok(())
}
